package robot

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRigidMotionStraight(t *testing.T) {
	// All feet commanded the same stride: pure translation, no slip.
	feet := []Vec2{{100, 100}, {0, 100}, {-100, -100}}
	strides := []Vec2{{-40, 0}, {-40, 0}, {-40, 0}}
	v, omega, slip := RigidMotion(feet, strides)
	if v.X != 40 || v.Y != 0 || omega != 0 || slip > 1e-9 {
		t.Fatalf("v=%v omega=%v slip=%v", v, omega, slip)
	}
}

func TestRigidMotionPureRotation(t *testing.T) {
	// Feet on a circle, strides tangential: pure rotation, no slip.
	// For a small rotation -w about the origin, foot at p moves by
	// approximately -w*J*p; the body must rotate by +w.
	w := 0.05
	feet := []Vec2{{100, 0}, {0, 100}, {-100, 0}, {0, -100}}
	strides := make([]Vec2, len(feet))
	for i, p := range feet {
		strides[i] = Vec2{X: w * p.Y, Y: -w * p.X} // = -w*J*p
	}
	v, omega, slip := RigidMotion(feet, strides)
	if math.Abs(omega-w) > 1e-12 {
		t.Fatalf("omega = %v, want %v", omega, w)
	}
	if v.Norm() > 1e-12 || slip > 1e-9 {
		t.Fatalf("v=%v slip=%v", v, slip)
	}
}

func TestRigidMotionRecoversRandomTwists(t *testing.T) {
	// Property: feet motions generated from an arbitrary rigid twist
	// must be recovered exactly with zero slip.
	f := func(vxRaw, vyRaw, wRaw int16) bool {
		vx := float64(vxRaw) / 1000
		vy := float64(vyRaw) / 1000
		w := float64(wRaw) / 100000
		feet := []Vec2{{120, 100}, {-20, 100}, {-120, 100}, {80, -100}, {-20, -100}, {-120, -100}}
		strides := make([]Vec2, len(feet))
		for i, p := range feet {
			// stride = -(v + w*J*p)
			strides[i] = Vec2{X: -(vx - w*p.Y), Y: -(vy + w*p.X)}
		}
		gv, gw, slip := RigidMotion(feet, strides)
		return math.Abs(gv.X-vx) < 1e-9 && math.Abs(gv.Y-vy) < 1e-9 &&
			math.Abs(gw-w) < 1e-12 && slip < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRigidMotionLeastSquaresOptimality(t *testing.T) {
	// The returned twist must not be improvable by small perturbations
	// (local optimality of the squared residual).
	rng := rand.New(rand.NewSource(6))
	cost := func(feet, strides []Vec2, vx, vy, w float64) float64 {
		var c float64
		for i := range feet {
			rx := vx - w*feet[i].Y + strides[i].X
			ry := vy + w*feet[i].X + strides[i].Y
			c += rx*rx + ry*ry
		}
		return c
	}
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(4)
		feet := make([]Vec2, n)
		strides := make([]Vec2, n)
		for i := range feet {
			feet[i] = Vec2{rng.Float64()*200 - 100, rng.Float64()*200 - 100}
			strides[i] = Vec2{rng.Float64()*80 - 40, rng.Float64()*20 - 10}
		}
		v, w, _ := RigidMotion(feet, strides)
		base := cost(feet, strides, v.X, v.Y, w)
		for _, d := range []struct{ dvx, dvy, dw float64 }{
			{1e-3, 0, 0}, {-1e-3, 0, 0}, {0, 1e-3, 0}, {0, -1e-3, 0},
			{0, 0, 1e-6}, {0, 0, -1e-6},
		} {
			if cost(feet, strides, v.X+d.dvx, v.Y+d.dvy, w+d.dw) < base-1e-12 {
				t.Fatalf("trial %d: perturbation improved the fit", trial)
			}
		}
	}
}

func TestRigidMotionDegenerate(t *testing.T) {
	if v, w, s := RigidMotion(nil, nil); v != (Vec2{}) || w != 0 || s != 0 {
		t.Fatal("empty input should be a no-op")
	}
	// Single foot: translation follows it, no rotation.
	v, w, s := RigidMotion([]Vec2{{50, 0}}, []Vec2{{-10, 0}})
	if v.X != 10 || w != 0 || s > 1e-9 {
		t.Fatalf("single-foot: v=%v w=%v s=%v", v, w, s)
	}
	// Mismatched lengths: no-op.
	if v, _, _ := RigidMotion([]Vec2{{1, 1}}, nil); v != (Vec2{}) {
		t.Fatal("mismatched lengths should be a no-op")
	}
}

func TestPoseAdvance(t *testing.T) {
	p := Pose{}
	p = p.Advance(Vec2{X: 10}, 0)
	if p.X != 10 || p.Y != 0 {
		t.Fatalf("straight advance: %+v", p)
	}
	// Turn 90° CCW, then advance "forward": should move along +Y.
	p = Pose{Theta: math.Pi / 2}
	p = p.Advance(Vec2{X: 10}, 0)
	if math.Abs(p.Y-10) > 1e-12 || math.Abs(p.X) > 1e-12 {
		t.Fatalf("rotated advance: %+v", p)
	}
	if (Pose{Theta: math.Pi}).HeadingDeg() != 180 {
		t.Fatal("HeadingDeg")
	}
}
