package robot

import (
	"math"
	"math/rand"
	"testing"
)

func TestConvexHullSquare(t *testing.T) {
	pts := []Vec2{{0, 0}, {2, 0}, {2, 2}, {0, 2}, {1, 1}, {0, 0}}
	hull := ConvexHull(pts)
	if len(hull) != 4 {
		t.Fatalf("hull size %d, want 4: %v", len(hull), hull)
	}
	// Interior point excluded.
	for _, v := range hull {
		if v == (Vec2{1, 1}) {
			t.Fatal("interior point in hull")
		}
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if h := ConvexHull(nil); len(h) != 0 {
		t.Fatal("empty hull")
	}
	if h := ConvexHull([]Vec2{{1, 1}}); len(h) != 1 {
		t.Fatal("single point hull")
	}
	if h := ConvexHull([]Vec2{{0, 0}, {1, 1}, {2, 2}, {3, 3}}); len(h) >= 3 {
		t.Fatalf("collinear points produced polygon: %v", h)
	}
}

func TestConvexHullContainsAllPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(10)
		pts := make([]Vec2, n)
		for i := range pts {
			pts[i] = Vec2{rng.Float64()*200 - 100, rng.Float64()*200 - 100}
		}
		hull := ConvexHull(pts)
		if len(hull) < 3 {
			continue
		}
		// Every input point must be inside or on the hull (margin >=
		// -epsilon).
		for _, p := range pts {
			if StabilityMargin(p, pts) < -1e-9 {
				t.Fatalf("point %v outside its own hull", p)
			}
		}
	}
}

func TestStabilityMarginTriangle(t *testing.T) {
	tri := []Vec2{{0, 100}, {100, -100}, {-100, -100}}
	m := StabilityMargin(Vec2{}, tri)
	if m <= 0 {
		t.Fatalf("centroid-ish point should be inside, margin %v", m)
	}
	// A point well outside.
	if StabilityMargin(Vec2{500, 0}, tri) >= 0 {
		t.Fatal("outside point has non-negative margin")
	}
	// Margin to a known edge: distance from origin to y=-100 edge is
	// 100; the slanted edges are closer.
	if m > 100 {
		t.Fatalf("margin %v exceeds distance to base edge", m)
	}
}

func TestStabilityMarginDegenerate(t *testing.T) {
	// Three collinear supports: not stable.
	line := []Vec2{{-100, 100}, {0, 100}, {100, 100}}
	if m := StabilityMargin(Vec2{}, line); m >= 0 {
		t.Fatalf("collinear support reported stable (margin %v)", m)
	}
	// No supports at all.
	if m := StabilityMargin(Vec2{}, nil); !math.IsInf(m, -1) {
		t.Fatalf("empty support margin %v", m)
	}
	// Two supports.
	if m := StabilityMargin(Vec2{}, []Vec2{{0, 100}, {0, -100}}); m >= 0 {
		t.Fatalf("two-point support reported stable (margin %v)", m)
	}
	// Point exactly on a degenerate support.
	if m := StabilityMargin(Vec2{0, 100}, line); m != 0 {
		t.Fatalf("on-line margin %v, want 0", m)
	}
}

func TestStabilityMarginScalesWithPolygon(t *testing.T) {
	small := []Vec2{{0, 10}, {10, -10}, {-10, -10}}
	big := []Vec2{{0, 100}, {100, -100}, {-100, -100}}
	if StabilityMargin(Vec2{}, small) >= StabilityMargin(Vec2{}, big) {
		t.Fatal("bigger support should give bigger margin")
	}
}
