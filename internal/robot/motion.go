package robot

import "math"

// RigidMotion solves for the planar body twist that best explains a
// set of stance-foot motions, in the least-squares sense.
//
// Stance feet are fixed on the ground; when the legs command body-frame
// foot motions ṗ_i at body-frame positions p_i, the body must move with
// translation v (body frame) and yaw rate ω such that the world-frame
// foot velocities vanish:
//
//	residual_i = v + ω·J·p_i + ṗ_i,   J = rotation by +90°
//
// Minimizing Σ|residual_i|² gives, with centered coordinates
// (p̂ = p - p̄, ṗ̂ = ṗ - ṗ̄):
//
//	ω  = Σ (p̂_i × ṗ̂_i withhat cross) / Σ|p̂_i|²   (see below)
//	v  = -ṗ̄ - ω·J·p̄
//
// The slip of each foot is the residual magnitude — the motion the
// ground had to absorb because the commanded strides were not
// consistent with any rigid body motion.
//
// All-equal strides reduce to the familiar straight-walk case
// v = -ṗ̄, ω = 0.
//
// ok reports whether the inputs define a motion at all: it is false
// when there are no stance feet (n == 0) or when feet and strides
// disagree in length, and the zero twist returned alongside it is a
// sentinel, not a solution. Coincident feet (all p_i equal) leave the
// rotation unobservable; the solver then fixes ω = 0 and reports
// ok = true, since the translational part is still well-defined.
func RigidMotion(feet, strides []Vec2) (v Vec2, omega float64, slip float64, ok bool) {
	n := len(feet)
	if n == 0 || n != len(strides) {
		return Vec2{}, 0, 0, false
	}
	var pBar, sBar Vec2
	for i := range feet {
		pBar.X += feet[i].X
		pBar.Y += feet[i].Y
		sBar.X += strides[i].X
		sBar.Y += strides[i].Y
	}
	pBar.X /= float64(n)
	pBar.Y /= float64(n)
	sBar.X /= float64(n)
	sBar.Y /= float64(n)

	var num, den float64
	for i := range feet {
		px, py := feet[i].X-pBar.X, feet[i].Y-pBar.Y
		sx, sy := strides[i].X-sBar.X, strides[i].Y-sBar.Y
		// d/dω residual_i = J p̂_i = (-p̂y, p̂x); setting the gradient to
		// zero yields ω Σ|p̂|² = Σ (p̂y·sx - p̂x·sy) = -Σ p̂ × ŝ.
		num += py*sx - px*sy
		den += px*px + py*py
	}
	if den > 0 {
		omega = num / den
	}
	// v = -ṗ̄ - ω J p̄  with  J p̄ = (-p̄y, p̄x).
	v = Vec2{X: -sBar.X + omega*pBar.Y, Y: -sBar.Y - omega*pBar.X}

	for i := range feet {
		rx := v.X - omega*feet[i].Y + strides[i].X
		ry := v.Y + omega*feet[i].X + strides[i].Y
		slip += math.Hypot(rx, ry)
	}
	return v, omega, slip, true
}

// Pose is the robot's world-frame pose: position of the body centre
// and heading (radians, counterclockwise, 0 = +X).
type Pose struct {
	X, Y  float64
	Theta float64
}

// Advance integrates a body-frame twist into the world pose: rotate
// the body-frame velocity into the world and accumulate the yaw.
func (p Pose) Advance(v Vec2, omega float64) Pose {
	sin, cos := math.Sincos(p.Theta)
	return Pose{
		X:     p.X + v.X*cos - v.Y*sin,
		Y:     p.Y + v.X*sin + v.Y*cos,
		Theta: p.Theta + omega,
	}
}

// HeadingDeg returns the heading in degrees.
func (p Pose) HeadingDeg() float64 { return p.Theta * 180 / math.Pi }
