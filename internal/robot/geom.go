package robot

import (
	"math"
	"sort"
)

// Vec2 is a point in the horizontal (ground) plane, in millimetres.
// +X is the robot's forward direction, +Y its left.
type Vec2 struct{ X, Y float64 }

// Sub returns v - o.
func (v Vec2) Sub(o Vec2) Vec2 { return Vec2{v.X - o.X, v.Y - o.Y} }

// Cross returns the z-component of the 2-D cross product v x o.
func (v Vec2) Cross(o Vec2) float64 { return v.X*o.Y - v.Y*o.X }

// Norm returns the Euclidean length.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// ConvexHull returns the convex hull of the points in counterclockwise
// order (Andrew's monotone chain). Duplicate and collinear boundary
// points are dropped. Fewer than three input points, or a degenerate
// (collinear) set, yields a hull with fewer than three vertices.
func ConvexHull(pts []Vec2) []Vec2 {
	if len(pts) < 2 {
		return append([]Vec2(nil), pts...)
	}
	ps := append([]Vec2(nil), pts...)
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].X != ps[j].X {
			return ps[i].X < ps[j].X
		}
		return ps[i].Y < ps[j].Y
	})
	// Dedupe.
	uniq := ps[:1]
	for _, p := range ps[1:] {
		if p != uniq[len(uniq)-1] {
			uniq = append(uniq, p)
		}
	}
	ps = uniq
	if len(ps) < 3 {
		return ps
	}
	var lower, upper []Vec2
	for _, p := range ps {
		for len(lower) >= 2 && lower[len(lower)-1].Sub(lower[len(lower)-2]).Cross(p.Sub(lower[len(lower)-2])) <= 0 {
			lower = lower[:len(lower)-1]
		}
		lower = append(lower, p)
	}
	for i := len(ps) - 1; i >= 0; i-- {
		p := ps[i]
		for len(upper) >= 2 && upper[len(upper)-1].Sub(upper[len(upper)-2]).Cross(p.Sub(upper[len(upper)-2])) <= 0 {
			upper = upper[:len(upper)-1]
		}
		upper = append(upper, p)
	}
	return append(lower[:len(lower)-1], upper[:len(upper)-1]...)
}

// StabilityMargin returns the signed distance from point p to the
// boundary of the convex hull of the support points: positive when p
// is strictly inside (statically stable), negative when outside or
// when the support is degenerate (fewer than three non-collinear
// points). For degenerate supports it returns the negated distance to
// the nearest support point (or -inf with no points), so "more wrong"
// postures score worse.
func StabilityMargin(p Vec2, support []Vec2) float64 {
	hull := ConvexHull(support)
	if len(hull) < 3 {
		if len(hull) == 0 {
			return math.Inf(-1)
		}
		d := math.Inf(1)
		for _, v := range support {
			d = math.Min(d, p.Sub(v).Norm())
		}
		if d == 0 {
			// On a degenerate support the robot tips; margin is zero
			// at best.
			return 0
		}
		return -d
	}
	margin := math.Inf(1)
	for i := range hull {
		a, b := hull[i], hull[(i+1)%len(hull)]
		edge := b.Sub(a)
		// Signed distance of p left of edge a->b (hull is CCW).
		d := edge.Cross(p.Sub(a)) / edge.Norm()
		margin = math.Min(margin, d)
	}
	return margin
}
