// Package robot models Leonardo, the six-legged robot of the paper:
// its geometry (Fig. 1: a 240 mm x 200 mm body, six legs with two
// degrees of freedom each plus an elastic lateral joint, ground- and
// obstacle-contact sensors), and a quasi-static walking simulator that
// plays a genome-configured controller and measures how well the
// resulting gait actually walks.
//
// The paper evaluates fitness purely in logic (internal/fitness) and
// uses the physical robot only to execute the evolved gait; this
// simulator plays that role — it validates champions (experiment E5)
// and implements the paper's discarded "first idea" of measuring
// fitness from the distance travelled.
//
// The walking model is quasi-static, matching the slow, statically
// stable locomotion regime of the real machine:
//
//   - a leg is either raised (swing) or grounded (stance);
//   - grounded feet do not slip individually; when grounded feet
//     command inconsistent motions the body follows their mean and the
//     disagreement is booked as slip;
//   - the robot is stable while its centre of mass lies inside the
//     support polygon of the grounded feet. When it is not, the robot
//     stumbles: raised feet have only LiftHeight of clearance, so the
//     tipping body settles onto one of them and keeps moving, at
//     degraded efficiency (StumbleEfficiency) — the paper's own word
//     for the event ("it will stumble and fall, resulting in a bad
//     fitness value").
package robot

import (
	"fmt"
	"math"

	"leonardo/internal/controller"
	"leonardo/internal/genome"
)

// Geometry of Leonardo, in millimetres (paper Fig. 1).
const (
	// BodyLength and BodyWidth are the paper's outline dimensions.
	BodyLength = 240.0
	BodyWidth  = 200.0
	// LegSpacingX separates the leg attachment rows along the body.
	LegSpacingX = 100.0
	// HipY is the lateral offset of the hips from the body midline.
	HipY = 100.0
	// StrideHalf is the horizontal foot throw from neutral at full
	// propulsion deflection.
	StrideHalf = 20.0
	// LiftHeight is the foot clearance of a raised leg.
	LiftHeight = 15.0
	// StumbleEfficiency scales the body displacement of a phase
	// executed while statically unstable: the tilted, partially
	// settled robot wastes about half its propulsion.
	StumbleEfficiency = 0.5
	// MassKG is the robot's mass ("weighting 1 kg").
	MassKG = 1.0
	// DegreesOfFreedom counts the actuated DOF: 2 per leg plus the
	// body articulation.
	DegreesOfFreedom = 13
)

// HipPosition returns the body-frame attachment point of a leg.
// Legs L1,L2,L3 run front-to-rear on the left (+Y); R1,R2,R3 on the
// right.
func HipPosition(leg genome.Leg) Vec2 {
	row := int(leg) % 3 // 0 front, 1 middle, 2 rear
	x := LegSpacingX * float64(1-row)
	y := HipY
	if !leg.Left() {
		y = -HipY
	}
	return Vec2{X: x, Y: y}
}

// FootPosition returns the body-frame ground-plane position of a foot
// for a given horizontal deflection (forward = +StrideHalf).
func FootPosition(leg genome.Leg, forward bool) Vec2 {
	hip := HipPosition(leg)
	dx := -StrideHalf
	if forward {
		dx = StrideHalf
	}
	return Vec2{X: hip.X + dx, Y: hip.Y}
}

// Sensors is the robot's contact-sensor state: per-leg ground contact
// and obstacle contact (the two "simple contacts" of the paper).
type Sensors struct {
	Ground   [genome.Legs]bool
	Obstacle [genome.Legs]bool
}

// Trial configures a simulated walk.
type Trial struct {
	// Cycles is the number of full gait cycles to execute.
	Cycles int
	// PhaseSeconds is the wall time per micro-movement; zero means
	// controller.DefaultPhaseSeconds.
	PhaseSeconds float64
	// ObstacleAt places a wall across the floor at this forward
	// distance (mm) from the start; zero means no obstacle. The robot
	// stops against it and front obstacle sensors assert.
	ObstacleAt float64
	// ArticulationDeg bends the body joint (Fig. 1a, "the most
	// original mechanical part of the robot [which] allows the robot
	// to make efficient turns"): the front leg row's stride direction
	// rotates by this angle, steering the walk. Positive bends left.
	ArticulationDeg float64
	// FailedLeg injects a servo failure: the 1-based leg number
	// (1 = L1 .. 6 = R3) of a leg whose both servos are dead — it
	// stays grounded where it is and drags. 0 means no failure. This
	// is the fault-recovery scenario of the evolvable-hardware
	// literature: re-evolving a gait for the damaged machine.
	FailedLeg int
}

// Metrics reports how a gait performed.
type Metrics struct {
	// DistanceMM is the net forward body displacement.
	DistanceMM float64
	// SlipMM accumulates the magnitude of stance-foot disagreement.
	SlipMM float64
	// Stumbles counts phases executed without a statically stable
	// support (the body settles onto raised feet and loses
	// efficiency).
	Stumbles int
	// StablePhases and Phases count phases executed upright vs total.
	StablePhases, Phases int
	// MeanMargin is the average static stability margin (mm) over
	// upright phases.
	MeanMargin float64
	// DurationSeconds is the simulated wall time.
	DurationSeconds float64
	// HitObstacle reports whether the robot reached the obstacle.
	HitObstacle bool
	// PathLengthMM is the length of the path the body centre traced.
	PathLengthMM float64
	// DisplacementMM is the straight-line distance between start and
	// end positions in the world frame.
	DisplacementMM float64
	// HeadingDeg is the final heading (counterclockwise positive).
	HeadingDeg float64
}

// SpeedMMPerSec returns average forward speed.
func (m Metrics) SpeedMMPerSec() float64 {
	if m.DurationSeconds == 0 {
		return 0
	}
	return m.DistanceMM / m.DurationSeconds
}

// String renders the metrics on one line.
func (m Metrics) String() string {
	return fmt.Sprintf("distance %.0f mm in %.1f s (%.1f mm/s), stumbles %d, slip %.0f mm, mean margin %.1f mm",
		m.DistanceMM, m.DurationSeconds, m.SpeedMMPerSec(), m.Stumbles, m.SlipMM, m.MeanMargin)
}

// Robot is a simulated Leonardo executing a walking controller.
type Robot struct {
	ctl      *controller.Controller
	pose     Pose
	posture  controller.Posture
	stumbled bool // last phase executed without stable support
	hitOb    bool
	// articulation is the body-joint angle in radians (+ = left).
	articulation float64
	// failed is the index of a dead leg, or -1.
	failed int
}

// New places a robot at the origin with the given controller. All
// legs start grounded at the rear of their stride (the controller's
// initial posture).
func New(ctl *controller.Controller) *Robot {
	return &Robot{ctl: ctl, posture: ctl.Posture(), failed: -1}
}

// FailLeg kills both servos of a leg: it stays grounded at its current
// stride position and drags from then on.
func (r *Robot) FailLeg(leg genome.Leg) { r.failed = int(leg) }

// NewForGenome is a convenience wrapping controller.New.
func NewForGenome(g genome.Genome) *Robot {
	return New(controller.New(g))
}

// Position returns the body's forward (world +X) displacement in
// millimetres.
func (r *Robot) Position() float64 { return r.pose.X }

// Pose returns the full world-frame pose.
func (r *Robot) Pose() Pose { return r.pose }

// SetArticulation bends the body joint (degrees, positive left). The
// front leg row's stride direction rotates with the joint.
func (r *Robot) SetArticulation(deg float64) {
	r.articulation = deg * math.Pi / 180
}

// Stumbled reports whether the last phase ran without a statically
// stable support.
func (r *Robot) Stumbled() bool { return r.stumbled }

// Sensors returns the current contact-sensor state. While stumbled,
// the body rests on its raised feet too, so every ground contact
// asserts.
func (r *Robot) Sensors() Sensors {
	var s Sensors
	for l := 0; l < genome.Legs; l++ {
		s.Ground[l] = !r.posture.Up[l] || r.stumbled
	}
	if r.hitOb {
		// The front legs touch the wall.
		s.Obstacle[genome.L1] = true
		s.Obstacle[genome.R1] = true
	}
	return s
}

// stanceFeet returns the feet on the ground under a posture.
func stanceFeet(p controller.Posture) []Vec2 {
	var out []Vec2
	for l := 0; l < genome.Legs; l++ {
		if !p.Up[l] {
			out = append(out, FootPosition(genome.Leg(l), p.Forward[l]))
		}
	}
	return out
}

// margin returns the static stability margin for a posture: the
// centre of mass is at the body origin.
func margin(p controller.Posture) float64 {
	return StabilityMargin(Vec2{}, stanceFeet(p))
}

// PhaseResult is the outcome of executing one controller phase.
type PhaseResult struct {
	Move controller.MicroMove
	// Displacement is the forward (body-frame +X) progress of the
	// phase; Twist is the full body-frame velocity and Omega the yaw
	// change (radians).
	Displacement float64
	Twist        Vec2
	Omega        float64
	Slip         float64
	Margin       float64
	Stumbled     bool
	Upright      bool
}

// rowSteer returns the fraction of the articulation angle a leg's
// stride direction follows: the joint is in the body middle, so the
// front segment (and its leg row) rotates by +1/2 the bend and the
// rear segment by -1/2, while the middle row stays on the joint axis.
func rowSteer(leg genome.Leg) float64 {
	switch int(leg) % 3 {
	case 0: // front row
		return 0.5
	case 2: // rear row
		return -0.5
	default:
		return 0
	}
}

// Step executes one controller phase and returns its outcome.
func (r *Robot) Step(obstacleAt float64) PhaseResult {
	before := r.posture
	move := r.ctl.Move()
	after := r.ctl.Advance()

	// A failed leg ignores its commands: grounded, frozen in place.
	if r.failed >= 0 {
		after.Up[r.failed] = false
		after.Forward[r.failed] = before.Forward[r.failed]
	}

	res := PhaseResult{Move: move}

	// Horizontal phase: stance feet push the body. The commanded foot
	// motions are fitted to a rigid body twist (translation + yaw);
	// inconsistent strides become slip, differential strides become
	// turning.
	if move == controller.MoveHorizontal {
		var feet, strides []Vec2
		for l := 0; l < genome.Legs; l++ {
			if before.Up[l] {
				continue // swing legs reposition freely
			}
			leg := genome.Leg(l)
			d := FootPosition(leg, after.Forward[l]).X -
				FootPosition(leg, before.Forward[l]).X
			stride := Vec2{X: d}
			if steer := rowSteer(leg) * r.articulation; steer != 0 {
				// The bent body segment strokes along its own axis.
				sinA, cosA := math.Sincos(steer)
				stride = Vec2{X: d * cosA, Y: d * sinA}
			}
			feet = append(feet, FootPosition(leg, before.Forward[l]))
			strides = append(strides, stride)
		}
		// ok is false only when every leg is in swing: no stance feet,
		// so the body has nothing to push against and stays put.
		if v, omega, slip, ok := RigidMotion(feet, strides); ok {
			res.Twist, res.Omega, res.Slip = v, omega, slip
			res.Displacement = v.X
		}
	}

	// Stability during the phase: with no stable support the body
	// settles onto its raised feet and the phase's propulsion
	// degrades.
	res.Margin = margin(after)
	if res.Margin <= 0 {
		res.Stumbled = true
		res.Displacement *= StumbleEfficiency
		res.Twist.X *= StumbleEfficiency
		res.Twist.Y *= StumbleEfficiency
		res.Omega *= StumbleEfficiency
	}
	r.stumbled = res.Stumbled
	res.Upright = !res.Stumbled

	// Obstacle: clamp forward motion at the wall (straight-approach
	// model: the wall is normal to world +X).
	if obstacleAt > 0 {
		front := r.pose.X + BodyLength/2 + StrideHalf
		if front+res.Twist.X >= obstacleAt {
			clamped := math.Max(0, obstacleAt-front)
			res.Twist.X = clamped
			res.Displacement = clamped
			r.hitOb = true
		}
	}
	r.pose = r.pose.Advance(res.Twist, res.Omega)
	r.posture = after
	return res
}

// Walk runs a full trial for a genome of any layout and returns the
// metrics. It is the package's main entry point.
func Walk(x genome.Extended, trial Trial) Metrics {
	ctl := controller.NewExtended(x)
	r := New(ctl)
	return r.Run(trial)
}

// WalkGenome runs a trial for a packed 36-bit genome.
func WalkGenome(g genome.Genome, trial Trial) Metrics {
	return Walk(genome.FromGenome(g), trial)
}

// Run executes the trial on this robot.
//
//leo:allow ctx bounded by the trial's cycle count; a full trial is milliseconds of work
func (r *Robot) Run(trial Trial) Metrics {
	phaseSec := trial.PhaseSeconds
	if phaseSec == 0 {
		phaseSec = controller.DefaultPhaseSeconds
	}
	cycles := trial.Cycles
	if cycles <= 0 {
		cycles = 1
	}
	if trial.ArticulationDeg != 0 {
		r.SetArticulation(trial.ArticulationDeg)
	}
	if trial.FailedLeg > 0 && trial.FailedLeg <= genome.Legs {
		r.FailLeg(genome.Leg(trial.FailedLeg - 1))
	}
	var m Metrics
	var marginSum float64
	phases := cycles * r.ctl.CyclePhases()
	for i := 0; i < phases; i++ {
		res := r.Step(trial.ObstacleAt)
		m.Phases++
		m.DistanceMM += res.Displacement
		m.PathLengthMM += math.Hypot(res.Twist.X, res.Twist.Y)
		m.SlipMM += res.Slip
		if res.Stumbled {
			m.Stumbles++
		}
		if res.Upright {
			m.StablePhases++
			marginSum += res.Margin
		}
	}
	if m.StablePhases > 0 {
		m.MeanMargin = marginSum / float64(m.StablePhases)
	}
	m.DurationSeconds = float64(phases) * phaseSec
	m.HitObstacle = r.hitOb
	m.DisplacementMM = math.Hypot(r.pose.X, r.pose.Y)
	m.HeadingDeg = r.pose.HeadingDeg()
	return m
}

// DistanceFitness is the paper's "first idea" for a fitness function:
// measure the distance travelled in a fixed-length trial, directly on
// the (simulated) robot. It needs seconds per genome — exactly the
// dynamic constraint that pushed the authors to the logic rules — but
// serves as ground truth for validating them (experiment E5/A1).
// Negative scores are clamped to zero. Stumbles are penalized by one
// stride each.
func DistanceFitness(x genome.Extended, cycles int) int {
	m := Walk(x, Trial{Cycles: cycles})
	score := m.DistanceMM - float64(m.Stumbles)*2*StrideHalf
	if score < 0 {
		return 0
	}
	return int(score)
}
