package island

import (
	"bytes"
	"sync"
	"testing"

	"leonardo/internal/fitness"
)

// In-process fleet transport: K shards in one test binary, synchronized
// at every epoch barrier with a condition variable. This pins the
// Transport abstraction independently of HTTP — the serve-layer tests
// re-prove the same equivalence over real sockets.

type memFleet struct {
	nodes int
	demes int

	mu    sync.Mutex
	cond  *sync.Cond
	exch  map[int][][]Emigrant // epoch → per-node emigrant batches
	exchN map[int]int
	done  map[int][]*bool // epoch → per-node done flags
	doneN map[int]int
}

func newMemFleet(nodes, demes int) *memFleet {
	f := &memFleet{
		nodes: nodes, demes: demes,
		exch:  map[int][][]Emigrant{},
		exchN: map[int]int{},
		done:  map[int][]*bool{},
		doneN: map[int]int{},
	}
	f.cond = sync.NewCond(&f.mu)
	return f
}

func (f *memFleet) transport(node int) Transport { return &memTransport{f: f, node: node} }

type memTransport struct {
	f    *memFleet
	node int
}

func (t *memTransport) Exchange(epoch int, out []Emigrant) ([]Emigrant, error) {
	f := t.f
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.exch[epoch] == nil {
		f.exch[epoch] = make([][]Emigrant, f.nodes)
	}
	if f.exch[epoch][t.node] == nil {
		f.exch[epoch][t.node] = append([]Emigrant{}, out...)
		f.exchN[epoch]++
		f.cond.Broadcast()
	}
	for f.exchN[epoch] < f.nodes {
		f.cond.Wait()
	}
	lo, hi := (Shard{Nodes: f.nodes, Index: t.node}).Range(f.demes)
	var in []Emigrant
	for _, batch := range f.exch[epoch] {
		for _, e := range batch {
			if e.To >= lo && e.To < hi {
				in = append(in, e)
			}
		}
	}
	return in, nil
}

func (t *memTransport) Barrier(epoch int, localDone bool) (bool, error) {
	f := t.f
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done[epoch] == nil {
		f.done[epoch] = make([]*bool, f.nodes)
	}
	if f.done[epoch][t.node] == nil {
		d := localDone
		f.done[epoch][t.node] = &d
		f.doneN[epoch]++
		f.cond.Broadcast()
	}
	for f.doneN[epoch] < f.nodes {
		f.cond.Wait()
	}
	fleet := false
	for _, d := range f.done[epoch] {
		fleet = fleet || *d
	}
	return fleet, nil
}

func TestShardRangePartition(t *testing.T) {
	for _, tc := range []struct{ nodes, demes int }{
		{1, 1}, {1, 4}, {2, 4}, {2, 5}, {3, 4}, {3, 7}, {4, 4}, {5, 64},
	} {
		next := 0
		for k := 0; k < tc.nodes; k++ {
			sh := Shard{Nodes: tc.nodes, Index: k}
			if err := sh.Validate(tc.demes); err != nil {
				t.Fatalf("%d/%d shard %d: %v", tc.nodes, tc.demes, k, err)
			}
			lo, hi := sh.Range(tc.demes)
			if lo != next {
				t.Fatalf("%d/%d shard %d starts at %d, want %d (ranges must tile)", tc.nodes, tc.demes, k, lo, next)
			}
			if hi <= lo {
				t.Fatalf("%d/%d shard %d is empty [%d, %d)", tc.nodes, tc.demes, k, lo, hi)
			}
			for g := lo; g < hi; g++ {
				if own := OwnerOf(tc.nodes, tc.demes, g); own != k {
					t.Fatalf("%d/%d: OwnerOf(%d) = %d, want %d", tc.nodes, tc.demes, g, own, k)
				}
			}
			next = hi
		}
		if next != tc.demes {
			t.Fatalf("%d/%d: ranges end at %d, want %d", tc.nodes, tc.demes, next, tc.demes)
		}
	}
	if err := (Shard{Nodes: 5, Index: 0}).Validate(4); err == nil {
		t.Fatal("5 nodes over 4 demes validated; every node needs a deme")
	}
	if err := (Shard{Nodes: 2, Index: 2}).Validate(4); err == nil {
		t.Fatal("out-of-range shard index validated")
	}
}

// runFleet drives a K-shard fleet of p over the in-memory transport
// until every shard reports Done, then returns the per-shard snapshots
// in node order. steps > 0 limits each shard to that many epochs
// instead ("run to a mid-run barrier").
func runFleet(t *testing.T, p Params, nodes, steps int, resume [][]byte) [][]byte {
	t.Helper()
	f := newMemFleet(nodes, p.Demes)
	shards := make([]*Archipelago, nodes)
	for k := range shards {
		var err error
		if resume != nil {
			shards[k], err = RestoreShard(resume[k], p.Base.Objective, f.transport(k))
		} else {
			shards[k], err = NewShard(p, Shard{Nodes: nodes, Index: k}, f.transport(k))
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, nodes)
	for k := range shards {
		wg.Add(1)
		//leo:allow goroutine test fleet: one driver per shard, joined below; the transport barrier synchronizes them
		go func(k int) {
			defer wg.Done()
			for n := 0; (steps <= 0 || n < steps) && !shards[k].Done(); n++ {
				if err := shards[k].Step(); err != nil {
					errs[k] = err
					return
				}
			}
		}(k)
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			t.Fatalf("shard %d: %v", k, err)
		}
	}
	snaps := make([][]byte, nodes)
	for k, s := range shards {
		snaps[k] = s.Snapshot()
	}
	return snaps
}

// TestShardDifferential is the distributed determinism contract at the
// island layer: the same parameters run on 1, 2, 3 and 4 shards produce
// — after MergeShardSnapshots — the byte-identical "island" snapshot of
// the single-node run, with identical migration totals folded in.
func TestShardDifferential(t *testing.T) {
	for _, seed := range []uint64{1, 7} {
		p := endlessParams(seed)
		p.Base.MaxGenerations = 40 // 8 epochs of 5 generations

		ref, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		for !ref.Done() {
			if err := ref.Step(); err != nil {
				t.Fatal(err)
			}
		}
		want := ref.Snapshot()

		for nodes := 1; nodes <= 4; nodes++ {
			snaps := runFleet(t, p, nodes, 0, nil)
			got, err := MergeShardSnapshots(snaps)
			if err != nil {
				t.Fatalf("seed %d, %d nodes: merge: %v", seed, nodes, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("seed %d: %d-node merged snapshot differs from the single-node run", seed, nodes)
			}
		}
	}
}

// TestShardDifferentialConverging re-proves the equivalence on a run
// that ends by convergence rather than budget: the fleet-done barrier
// must stop every shard in the same epoch a single-node run stops in.
func TestShardDifferentialConverging(t *testing.T) {
	p := testParams(3)
	p.Base.MaxGenerations = 400

	ref, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	for !ref.Done() {
		if err := ref.Step(); err != nil {
			t.Fatal(err)
		}
	}
	want := ref.Snapshot()
	if !ref.Result().Converged {
		t.Logf("run exhausted its budget without converging; equivalence still checked")
	}

	for _, nodes := range []int{2, 3} {
		snaps := runFleet(t, p, nodes, 0, nil)
		got, err := MergeShardSnapshots(snaps)
		if err != nil {
			t.Fatalf("%d nodes: merge: %v", nodes, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%d-node merged snapshot differs from the single-node run", nodes)
		}
	}
}

// TestShardResume: every shard checkpoints at a mid-run barrier, the
// fleet is torn down, restored from the "cluster" snapshots, and run to
// completion — finishing byte-identical to an uninterrupted single-node
// run.
func TestShardResume(t *testing.T) {
	p := endlessParams(11)
	p.Base.MaxGenerations = 40

	ref, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	for !ref.Done() {
		if err := ref.Step(); err != nil {
			t.Fatal(err)
		}
	}
	want := ref.Snapshot()

	const nodes = 3
	mid := runFleet(t, p, nodes, 3, nil)
	for k, snap := range mid {
		s, err := RestoreShard(snap, p.Base.Objective, nil)
		if err != nil {
			t.Fatalf("shard %d restore: %v", k, err)
		}
		if sh, ok := s.Shard(); !ok || sh.Index != k || sh.Nodes != nodes {
			t.Fatalf("shard %d restored placement = %+v, %v", k, sh, ok)
		}
		if s.Epochs() != 3 {
			t.Fatalf("shard %d restored at epoch %d, want 3", k, s.Epochs())
		}
	}
	final := runFleet(t, p, nodes, 0, mid)
	got, err := MergeShardSnapshots(final)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed 3-node fleet diverged from the uninterrupted single-node run")
	}
}

// TestMergeShardSnapshotsRejects pins the merge validation: wrong part
// counts, duplicate indexes, and mixed epochs are refused.
func TestMergeShardSnapshotsRejects(t *testing.T) {
	p := endlessParams(5)
	p.Base.MaxGenerations = 40
	snaps := runFleet(t, p, 2, 2, nil)

	if _, err := MergeShardSnapshots(nil); err == nil {
		t.Fatal("merged zero parts")
	}
	if _, err := MergeShardSnapshots(snaps[:1]); err == nil {
		t.Fatal("merged 1 of 2 parts")
	}
	if _, err := MergeShardSnapshots([][]byte{snaps[0], snaps[0]}); err == nil {
		t.Fatal("merged a duplicated shard index")
	}
	skewed := runFleet(t, p, 2, 3, snaps)
	if _, err := MergeShardSnapshots([][]byte{snaps[0], skewed[1]}); err == nil {
		t.Fatal("merged snapshots from different epochs")
	}
	// The single-shard degenerate fleet merges to a valid island
	// snapshot even mid-run.
	one := runFleet(t, p, 1, 2, nil)
	merged, err := MergeShardSnapshots(one)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(merged, unreachable{fitness.New()}); err != nil {
		t.Fatalf("merged single-shard snapshot does not restore: %v", err)
	}
}
