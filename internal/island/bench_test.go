package island

import (
	"context"
	"runtime"
	"testing"

	"leonardo/internal/engine"
)

// The archipelago benchmarks hold total work constant — demes ×
// generations-per-deme = 800 evaluated generations per iteration, with
// an unreachable objective so no run converges early — and vary only
// how that work is scheduled. Comparing the single-deme baseline with
// the 8-deme runs on 1 worker and on all cores separates the island
// bookkeeping cost (barrier, migration) from the concurrency win.
// BENCH_island.json reports the numbers.
func benchRun(b *testing.B, demes, workers, epochs, migrateEvery int) {
	b.ReportAllocs()
	// The scheduling comparison is meaningless without knowing how many
	// cores the run actually had, and the -N name suffix disappears when
	// GOMAXPROCS is 1 — so record it as a metric in the raw output
	// itself (BENCH_island.json's methodology reads it from there).
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
	for i := 0; i < b.N; i++ {
		p := endlessParams(uint64(i) + 1)
		p.Demes = demes
		p.Workers = workers
		p.MigrateEvery = migrateEvery
		a, err := New(p)
		if err != nil {
			b.Fatal(err)
		}
		if err := engine.Steps(context.Background(), a, nil, epochs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSingleDeme is the baseline: one population, 800 generations.
func BenchmarkSingleDeme(b *testing.B) { benchRun(b, 1, 1, 8, 100) }

// BenchmarkArchipelagoSerial is 8 demes × 100 generations on one
// worker: the same 800 generations plus the full island bookkeeping,
// with zero concurrency.
func BenchmarkArchipelagoSerial(b *testing.B) { benchRun(b, 8, 1, 4, 25) }

// BenchmarkArchipelagoParallel is the same 8 demes × 100 generations on
// all cores (Workers = 0 = GOMAXPROCS) — the trajectory is identical to
// the serial run, only the wall clock moves.
func BenchmarkArchipelagoParallel(b *testing.B) { benchRun(b, 8, 0, 4, 25) }
