package island

import (
	"bytes"
	"context"
	"testing"

	"leonardo/internal/engine"
	"leonardo/internal/fitness"
	"leonardo/internal/gap"
	"leonardo/internal/gapcirc"
)

// unreachable wraps the paper evaluator with an unattainable maximum so
// runs never converge early — the fixture for fixed-length trajectories.
type unreachable struct{ fitness.Evaluator }

func (unreachable) Max() int { return 1 << 30 }

func testParams(seed uint64) Params {
	return Params{
		Demes:        4,
		MigrateEvery: 5,
		Topology:     Ring,
		Base:         gap.PaperParams(seed),
	}
}

// endlessParams is testParams with an unreachable objective and a high
// generation cap: every epoch runs its full MigrateEvery generations.
func endlessParams(seed uint64) Params {
	p := testParams(seed)
	p.Base.Objective = unreachable{fitness.New()}
	p.Base.MaxGenerations = 1 << 20
	return p
}

func TestDemeSeedsDistinct(t *testing.T) {
	for _, master := range []uint64{0, 1, 42, ^uint64(0)} {
		seen := map[uint64]int{}
		for i := 0; i < 256; i++ {
			s := DemeSeed(master, i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("master %d: demes %d and %d collide on seed %#x", master, prev, i, s)
			}
			seen[s] = i
		}
	}
	if DemeSeed(7, 0) != DemeSeed(7, 0) {
		t.Fatal("DemeSeed is not deterministic")
	}
}

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Params)
		ok     bool
	}{
		{"baseline", func(p *Params) {}, true},
		{"one deme", func(p *Params) { p.Demes = 1 }, true},
		{"isolated", func(p *Params) { p.Topology = Isolated }, true},
		{"default topology", func(p *Params) { p.Topology = "" }, true},
		{"zero demes", func(p *Params) { p.Demes = 0 }, false},
		{"negative demes", func(p *Params) { p.Demes = -3 }, false},
		{"too many demes", func(p *Params) { p.Demes = MaxDemes + 1 }, false},
		{"negative interval", func(p *Params) { p.MigrateEvery = -1 }, false},
		{"unknown topology", func(p *Params) { p.Topology = "torus" }, false},
		{"bad base population", func(p *Params) { p.Base.PopulationSize = 0 }, false},
	}
	for _, tc := range cases {
		p := testParams(1)
		tc.mutate(&p)
		if err := p.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

// TestArchipelagoConverges runs the paper objective across a small ring
// and checks the champion reaches the maximum rule fitness.
func TestArchipelagoConverges(t *testing.T) {
	a, err := New(testParams(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.RunCtx(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("archipelago did not converge: %+v", res)
	}
	if res.BestFitness != res.MaxFitness {
		t.Fatalf("best fitness %d, want maximum %d", res.BestFitness, res.MaxFitness)
	}
	if res.BestDeme < 0 || res.BestDeme >= a.Demes() {
		t.Fatalf("best deme %d out of range", res.BestDeme)
	}
	if got := fitness.New().ScoreExtended(res.Best); got != res.BestFitness {
		t.Fatalf("champion rescores to %d, result says %d", got, res.BestFitness)
	}
}

// TestMigrationSchedule pins the migration cursor: a ring archipelago
// accepts one immigrant per deme per epoch while no deme is finished,
// and an isolated one accepts none.
func TestMigrationSchedule(t *testing.T) {
	p := endlessParams(3)
	a, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	const epochs = 6
	if err := engine.Steps(context.Background(), a, nil, epochs); err != nil {
		t.Fatal(err)
	}
	if want := epochs * p.Demes; a.Migrations() != want {
		t.Fatalf("ring accepted %d migrants, want %d", a.Migrations(), want)
	}
	if a.Epochs() != epochs {
		t.Fatalf("epoch cursor %d, want %d", a.Epochs(), epochs)
	}

	p.Topology = Isolated
	iso, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.Steps(context.Background(), iso, nil, epochs); err != nil {
		t.Fatal(err)
	}
	if iso.Migrations() != 0 {
		t.Fatalf("isolated archipelago accepted %d migrants", iso.Migrations())
	}
}

// TestDemeObserverOrdering checks that per-deme telemetry arrives in
// deme index order with per-deme generations increasing — i.e. the
// barrier serializes observation no matter how demes were scheduled.
func TestDemeObserverOrdering(t *testing.T) {
	p := endlessParams(5)
	p.Workers = 8
	a, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	lastDeme := -1
	lastGen := make(map[int]int)
	a.DemeObs = DemeObserverFunc(func(ev DemeEvent) {
		if ev.Deme < lastDeme {
			// A smaller deme index may only restart at an epoch boundary.
			if ev.Event.Generation <= lastGen[ev.Deme] {
				t.Errorf("deme %d regressed to generation %d", ev.Deme, ev.Event.Generation)
			}
		}
		if ev.Event.Generation <= lastGen[ev.Deme] {
			t.Errorf("deme %d: generation %d after %d", ev.Deme, ev.Event.Generation, lastGen[ev.Deme])
		}
		lastGen[ev.Deme] = ev.Event.Generation
		lastDeme = ev.Deme
	})
	if err := engine.Steps(context.Background(), a, nil, 3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.Demes; i++ {
		if lastGen[i] != 3*p.MigrateEvery {
			t.Fatalf("deme %d observed through generation %d, want %d", i, lastGen[i], 3*p.MigrateEvery)
		}
	}
}

// TestAggregateEvent sanity-checks the epoch telemetry against the
// demes' own counters.
func TestAggregateEvent(t *testing.T) {
	a, err := New(endlessParams(9))
	if err != nil {
		t.Fatal(err)
	}
	var rec engine.Recorder
	if err := engine.Steps(context.Background(), a, &rec, 4); err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 4 {
		t.Fatalf("observed %d epochs, want 4", rec.Len())
	}
	last, _ := rec.Last()
	if last.Generation != 4*a.Params().MigrateEvery {
		t.Fatalf("aggregate generation %d, want %d", last.Generation, 4*a.Params().MigrateEvery)
	}
	var draws uint64
	for i := 0; i < a.Demes(); i++ {
		draws += a.Deme(i).Event().Draws
	}
	if last.Draws != draws {
		t.Fatalf("aggregate draws %d, demes sum to %d", last.Draws, draws)
	}
	if last.BestEver <= 0 || last.MeanFitness <= 0 {
		t.Fatalf("degenerate aggregate event %+v", last)
	}
}

// TestSnapshotResumeBitIdentical extends the PR2 resume guarantee to
// the archipelago: snapshot mid-run, restore, run both to the same
// epoch — snapshots, results, and migration cursors must match exactly.
func TestSnapshotResumeBitIdentical(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		a, err := New(endlessParams(seed))
		if err != nil {
			t.Fatal(err)
		}
		if err := engine.Steps(context.Background(), a, nil, 5); err != nil {
			t.Fatal(err)
		}
		snap := a.Snapshot()

		r, err := Restore(snap, unreachable{fitness.New()})
		if err != nil {
			t.Fatalf("seed %d: restore: %v", seed, err)
		}
		if r.Epochs() != 5 || r.Migrations() != a.Migrations() {
			t.Fatalf("seed %d: cursor restored as (%d, %d), want (5, %d)",
				seed, r.Epochs(), r.Migrations(), a.Migrations())
		}
		if !bytes.Equal(r.Snapshot(), snap) {
			t.Fatalf("seed %d: restore is not snapshot-stable", seed)
		}

		if err := engine.Steps(context.Background(), a, nil, 5); err != nil {
			t.Fatal(err)
		}
		if err := engine.Steps(context.Background(), r, nil, 5); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Snapshot(), r.Snapshot()) {
			t.Fatalf("seed %d: resumed archipelago diverged from uninterrupted run", seed)
		}
		ra, rr := a.Result(), r.Result()
		if ra.BestFitness != rr.BestFitness || ra.Draws != rr.Draws ||
			ra.Migrations != rr.Migrations || !ra.Best.Bits.Equal(rr.Best.Bits) {
			t.Fatalf("seed %d: results diverged: %+v vs %+v", seed, ra, rr)
		}
	}
}

func TestRestoreRejectsCorruptSnapshots(t *testing.T) {
	a, err := New(testParams(5))
	if err != nil {
		t.Fatal(err)
	}
	snap := a.Snapshot()
	g, err := gap.New(gap.PaperParams(5))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":      {},
		"truncated":  snap[:len(snap)/3],
		"trailing":   append(append([]byte{}, snap...), 0x7F),
		"wrong kind": g.Snapshot(),
	}
	for name, data := range cases {
		if _, err := Restore(data, nil); err == nil {
			t.Errorf("%s snapshot accepted", name)
		}
	}
}

// TestMixedArchipelago runs a behavioural deme next to a gate-level
// driver deme: the driver emigrates its champion into the ring but
// accepts no immigrants, and the mixed archipelago snapshot round-trips
// by sub-snapshot kind.
func TestMixedArchipelago(t *testing.T) {
	base := gap.PaperParams(1)
	base.PopulationSize = 8

	soft, err := gap.New(base)
	if err != nil {
		t.Fatal(err)
	}
	hard, err := gapcirc.NewDriver(base, gapcirc.BuildOpts{}, []uint64{3, 9}, 6, 0)
	if err != nil {
		t.Fatal(err)
	}

	p := Params{Demes: 2, MigrateEvery: 2, Topology: Ring, Base: base}
	a, err := NewWithDemes(p, []Deme{soft, hard})
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.Steps(context.Background(), a, nil, 1); err != nil {
		t.Fatal(err)
	}
	// Only deme 1 -> deme 0 lands (deme 0 is the only Settler).
	if a.Migrations() != 1 {
		t.Fatalf("mixed ring accepted %d migrants after one epoch, want 1", a.Migrations())
	}

	snap := a.Snapshot()
	r, err := Restore(snap, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.Snapshot(), snap) {
		t.Fatal("mixed archipelago restore is not snapshot-stable")
	}
	if _, ok := r.Deme(0).(*gap.GAP); !ok {
		t.Fatalf("deme 0 restored as %T, want *gap.GAP", r.Deme(0))
	}
	if _, ok := r.Deme(1).(*gapcirc.Driver); !ok {
		t.Fatalf("deme 1 restored as %T, want *gapcirc.Driver", r.Deme(1))
	}

	res, err := r.RunCtx(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness <= 0 {
		t.Fatalf("mixed archipelago produced no champion: %+v", res)
	}
}

// TestCancellationLandsOnEpochBoundary mirrors the gap test: a
// cancelled archipelago stops at the next barrier with a valid partial
// result and can continue afterwards.
func TestCancellationLandsOnEpochBoundary(t *testing.T) {
	a, err := New(endlessParams(11))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var epochs int
	obs := engine.FuncObserver(func(engine.Event) {
		epochs++
		if epochs == 3 {
			cancel()
		}
	})
	if _, err := a.RunCtx(ctx, obs); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if a.Epochs() != 3 {
		t.Fatalf("stopped after %d epochs, want exactly 3", a.Epochs())
	}
	if err := engine.Steps(context.Background(), a, nil, 1); err != nil {
		t.Fatal(err)
	}
	if a.Epochs() != 4 {
		t.Fatalf("could not continue after cancellation: at epoch %d", a.Epochs())
	}
}
