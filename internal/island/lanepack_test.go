package island

import (
	"bytes"
	"context"
	"testing"

	"leonardo/internal/fitness"
	"leonardo/internal/gap"
	"leonardo/internal/gapcirc"
)

// Compile-time wiring: a lane view is a full citizen of the island
// model — deme and settler — and the lane pack is an engine stepper.
var (
	_ Settler = (*gapcirc.LaneDeme)(nil)
	_ Deme    = (*gapcirc.LaneDeme)(nil)
)

// lanePackParams returns a small-but-real archipelago configuration:
// ring migration every 5 generations, 30-generation budget, 8-genome
// populations.
func lanePackParams(demes int, master uint64) Params {
	base := gap.PaperParams(master)
	base.PopulationSize = 8
	base.MaxGenerations = 30
	return Params{Demes: demes, MigrateEvery: 5, Base: base}
}

// scalarLaneArchipelago builds the scalar comparator: an archipelago
// whose deme i is a single-lane gapcirc group over DemeSeed(master, i)
// — the same circuit, the same seeds, but each deme alone in its own
// simulator. Bit-identity against this proves the lane packing (the
// shared clock and freeze choreography) perturbs no deme's trajectory.
func scalarLaneArchipelago(t *testing.T, p Params) (*Archipelago, []*gapcirc.LaneDemes) {
	t.Helper()
	p = p.withDefaults()
	groups := make([]*gapcirc.LaneDemes, p.Demes)
	demes := make([]Deme, p.Demes)
	for i := range demes {
		g, err := gapcirc.NewLaneDemes(p.Base, gapcirc.BuildOpts{}, []uint64{DemeSeed(p.Base.Seed, i)})
		if err != nil {
			t.Fatalf("scalar deme %d: %v", i, err)
		}
		groups[i] = g
		demes[i] = g.Demes()[0]
	}
	a, err := NewWithDemes(p, demes)
	if err != nil {
		t.Fatal(err)
	}
	return a, groups
}

// compareLanePackToScalar asserts bit-identity between a lane-packed
// archipelago and the scalar comparator: per-deme best registers and
// complete basis populations.
func compareLanePackToScalar(t *testing.T, lp *LanePack, scalar []*gapcirc.LaneDemes) {
	t.Helper()
	for i := range scalar {
		lb, lf := lp.Group().BestLane(i)
		sb, sf := scalar[i].BestLane(0)
		if lb != sb || lf != sf {
			t.Fatalf("deme %d: lane-packed best %v/%d, scalar %v/%d", i, lb, lf, sb, sf)
		}
		lpop := lp.Group().ReadBasisLane(i)
		spop := scalar[i].ReadBasisLane(0)
		for j := range lpop {
			if lpop[j] != spop[j] {
				t.Fatalf("deme %d individual %d: lane-packed %v, scalar %v", i, j, lpop[j], spop[j])
			}
		}
	}
}

// TestLanePackMatchesScalarArchipelago is the headline differential: a
// lane-packed archipelago run to completion replays, deme by deme and
// bit for bit, an archipelago of single-lane groups over the same
// master seed — populations, best registers, migration count, and the
// aggregate result all match.
func TestLanePackMatchesScalarArchipelago(t *testing.T) {
	p := lanePackParams(6, 1234)

	lp, err := NewLanePack(p)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := lp.RunCtx(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}

	sa, groups := scalarLaneArchipelago(t, p)
	sr, err := sa.RunCtx(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}

	compareLanePackToScalar(t, lp, groups)
	if lr.BestFitness != sr.BestFitness || lr.Best.Packed() != sr.Best.Packed() || lr.BestDeme != sr.BestDeme {
		t.Fatalf("results diverge: lane-packed %+v, scalar %+v", lr, sr)
	}
	if lr.Generations != sr.Generations || lr.Migrations != sr.Migrations {
		t.Fatalf("cursors diverge: lane-packed gen %d / %d migrants, scalar gen %d / %d migrants",
			lr.Generations, lr.Migrations, sr.Generations, sr.Migrations)
	}
	if lr.Migrations == 0 {
		t.Fatal("no migrations happened; the differential never exercised the ring barrier")
	}
	if lp.Archipelago().Epochs() != sa.Epochs() {
		t.Fatalf("epochs diverge: lane-packed %d, scalar %d", lp.Archipelago().Epochs(), sa.Epochs())
	}
}

// TestLanePackWorkerInvariance pins the determinism claim the group
// mutex provides: the trajectory is identical for every worker count.
func TestLanePackWorkerInvariance(t *testing.T) {
	p := lanePackParams(5, 77)
	var first []byte
	for _, workers := range []int{1, 3, 8} {
		pw := p
		pw.Workers = workers
		lp, err := NewLanePack(pw)
		if err != nil {
			t.Fatal(err)
		}
		for e := 0; e < 3; e++ {
			if err := lp.Step(); err != nil {
				t.Fatal(err)
			}
		}
		snap := lp.Group().Snapshot()
		if first == nil {
			first = snap
		} else if !bytes.Equal(first, snap) {
			t.Fatalf("trajectory depends on worker count (%d workers diverged)", workers)
		}
	}
}

// TestLanePackSnapshotResume proves resume transparency: a lane pack
// snapshotted mid-run and restored finishes bit-identically both to
// its own uninterrupted twin and to the scalar comparator.
func TestLanePackSnapshotResume(t *testing.T) {
	p := lanePackParams(4, 99)

	lp, err := NewLanePack(p)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 2; e++ {
		if err := lp.Step(); err != nil {
			t.Fatal(err)
		}
	}
	blob := lp.Snapshot()

	if _, err := lp.RunCtx(context.Background(), nil); err != nil {
		t.Fatal(err)
	}

	r, err := RestoreLanePack(blob)
	if err != nil {
		t.Fatal(err)
	}
	if r.Archipelago().Epochs() != 2 || r.Params().Demes != p.Demes {
		t.Fatalf("restored pack at epoch %d with %d demes, want 2 and %d",
			r.Archipelago().Epochs(), r.Params().Demes, p.Demes)
	}
	if _, err := r.RunCtx(context.Background(), nil); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(lp.Snapshot(), r.Snapshot()) {
		t.Fatal("resumed lane pack's final snapshot differs from the uninterrupted run's")
	}

	sa, groups := scalarLaneArchipelago(t, p)
	if _, err := sa.RunCtx(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	compareLanePackToScalar(t, r, groups)
	if r.Archipelago().Migrations() != sa.Migrations() {
		t.Fatalf("resumed pack accepted %d migrants, scalar %d", r.Archipelago().Migrations(), sa.Migrations())
	}
}

// TestScalarLaneDemeArchipelagoSnapshot exercises the "lanedemes" case
// in island.Restore: an archipelago of single-lane groups round-trips
// through the generic island snapshot and continues bit-identically.
func TestScalarLaneDemeArchipelagoSnapshot(t *testing.T) {
	p := lanePackParams(3, 7)
	sa, _ := scalarLaneArchipelago(t, p)
	for e := 0; e < 2; e++ {
		if err := sa.Step(); err != nil {
			t.Fatal(err)
		}
	}
	blob := sa.Snapshot()
	if _, err := sa.RunCtx(context.Background(), nil); err != nil {
		t.Fatal(err)
	}

	r, err := Restore(blob, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunCtx(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	want := sa.Result()
	got := r.Result()
	if got.BestFitness != want.BestFitness || got.Best.Packed() != want.Best.Packed() ||
		got.Generations != want.Generations || got.Migrations != want.Migrations {
		t.Fatalf("restored archipelago result %+v, uninterrupted %+v", got, want)
	}
	if !bytes.Equal(sa.Snapshot(), r.Snapshot()) {
		t.Fatal("restored archipelago's final snapshot differs from the uninterrupted run's")
	}
}

// TestLanePackValidation pins the constructor's checks.
func TestLanePackValidation(t *testing.T) {
	p := lanePackParams(MaxLaneDemes+1, 1)
	if _, err := NewLanePack(p); err == nil {
		t.Fatal("oversized lane pack should be rejected")
	}
	p = lanePackParams(2, 1)
	p.Base.Objective = unreachable{fitness.New()}
	if _, err := NewLanePack(p); err == nil {
		t.Fatal("custom objective should be rejected (fitness is in circuit logic)")
	}
}
