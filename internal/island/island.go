// Package island implements island-model (archipelago) evolution on
// top of the shared run engine: N demes — independent evolution
// processes, each with its own CA-RNG stream — run concurrently and
// exchange their champions on a fixed migration schedule. This is the
// canonical scale-out for the paper's GA shape: the single 32-genome
// on-chip population becomes an archipelago of such populations, one
// per hardware unit, with the ring migration the only coupling.
//
// Determinism rules (DESIGN.md §9):
//
//   - deme seeds derive from the master seed via splitmix64 (DemeSeed),
//     so the whole archipelago is a pure function of its Params;
//   - between migration barriers demes share no state, so stepping them
//     on any number of engine.Map workers yields identical per-deme
//     states — Map commits results in index order;
//   - at a barrier, migration runs single-threaded in deme index order,
//     emigrants are latched before any replacement happens, and the
//     receiving deme draws its replacement tournament on its own CA
//     stream — every random decision is owned by exactly one deme and
//     is therefore captured by that deme's snapshot.
//
// Consequently an archipelago replays bit-identically across worker
// counts, processes, and snapshot/resume boundaries (the differential
// tests in this package pin all three).
//
// This package is replay-critical: runs must replay bit-identically
// across processes and resumes (leolint enforces DESIGN.md §8).
//
//leo:deterministic
package island

import (
	"context"
	"fmt"
	"sort"

	"leonardo/internal/engine"
	"leonardo/internal/fitness"
	"leonardo/internal/gap"
	"leonardo/internal/genome"
)

// Topology names the migration graph of the archipelago.
type Topology string

const (
	// Ring sends deme i's champion to deme (i+1) mod N at every
	// migration barrier — the paper-era standard for island GAs.
	Ring Topology = "ring"
	// Isolated runs the demes side by side with no migration at all
	// (the baseline the ring is measured against).
	Isolated Topology = "none"
)

// DefaultMigrateEvery is the migration interval used when Params leaves
// MigrateEvery zero: one exchange every 10 generations keeps demes
// loosely coupled while migration stays a negligible fraction of the
// evolutionary work.
const DefaultMigrateEvery = 10

// MaxDemes bounds the archipelago size (and what Restore accepts).
const MaxDemes = 1 << 12

// Params configures an archipelago. Base carries the per-deme GAP
// parameters; Base.Seed is the master seed every deme seed is derived
// from.
//
//leo:snapshot
type Params struct {
	// Demes is the number of islands (at least 1).
	Demes int
	// MigrateEvery is the number of generations between migration
	// barriers (0 means DefaultMigrateEvery). It is also the engine
	// step granularity: one Archipelago.Step advances every deme by
	// MigrateEvery generations, so cancellation and snapshots land on
	// epoch boundaries.
	MigrateEvery int
	// Topology is the migration graph ("" means Ring).
	Topology Topology
	// Workers bounds the engine.Map pool that steps demes concurrently
	// (0 means GOMAXPROCS). It never affects the trajectory — only wall
	// time — and is re-chosen per process.
	//
	//leo:allow snapcodec runtime worker bound; never affects the trajectory, re-chosen per process
	Workers int
	// Base is the per-deme GAP configuration. Base.Seed is the master
	// seed; each deme runs on DemeSeed(Base.Seed, i). An
	// InitialPopulation, if any, warm-starts every deme.
	Base gap.Params
}

// Validate reports whether the archipelago parameters are usable.
func (p Params) Validate() error {
	if p.Demes < 1 {
		return fmt.Errorf("island: archipelago needs at least 1 deme, got %d", p.Demes)
	}
	if p.Demes > MaxDemes {
		return fmt.Errorf("island: %d demes exceed the maximum %d", p.Demes, MaxDemes)
	}
	if p.MigrateEvery < 0 {
		return fmt.Errorf("island: negative migration interval %d", p.MigrateEvery)
	}
	switch p.Topology {
	case Ring, Isolated, "":
	default:
		return fmt.Errorf("island: unknown topology %q", p.Topology)
	}
	if err := p.Base.Validate(); err != nil {
		return fmt.Errorf("island: deme parameters: %w", err)
	}
	return nil
}

// DemeSeed derives deme i's CA seed from the master seed by one
// splitmix64 round over master + (i+1)·golden-ratio. splitmix64 is a
// bijective finalizer, so distinct demes always get distinct seeds, and
// the derivation is documented here precisely so external tools can
// reproduce any deme's stream from the master seed alone.
func DemeSeed(master uint64, deme int) uint64 {
	z := master + (uint64(deme)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// Deme is one island: a stepper that exposes its champion and can
// checkpoint itself. *gap.GAP and *gapcirc.Driver both satisfy it.
type Deme interface {
	engine.Stepper
	// Snapshot serializes the deme with the engine codec; Restore
	// dispatches on the snapshot kind to rebuild it.
	Snapshot() []byte
	// Best returns the deme's best individual and its fitness.
	Best() (genome.Extended, int)
}

// Settler is a Deme that can accept an immigrant. The behavioural GAP
// is a Settler; the gate-level driver is not (its population lives in
// circuit RAM), so it emigrates its champion but receives nothing —
// migration simply skips non-Settler destinations.
type Settler interface {
	Deme
	Immigrate(genome.Extended) error
}

// converger is the optional convergence probe: gap demes report
// reaching the objective maximum, which ends the archipelago run.
type converger interface{ Converged() bool }

// DemeEvent pairs a deme index with that deme's per-generation
// telemetry.
type DemeEvent struct {
	Deme  int
	Event engine.Event
}

// DemeObserver consumes per-deme telemetry. The archipelago delivers
// events strictly in deme index order after each epoch, never
// concurrently.
type DemeObserver interface {
	OnDemeGeneration(DemeEvent)
}

// DemeObserverFunc adapts a function to the DemeObserver interface.
type DemeObserverFunc func(DemeEvent)

// OnDemeGeneration implements DemeObserver.
func (f DemeObserverFunc) OnDemeGeneration(ev DemeEvent) { f(ev) }

// Archipelago runs N demes under the engine contract: it is itself an
// engine.Stepper whose Step advances every deme by one epoch
// (MigrateEvery generations, concurrently via engine.Map) and then
// migrates at the barrier. Create with New (gap demes) or NewWithDemes
// (custom/mixed demes), restore with Restore.
type Archipelago struct {
	p     Params
	obj   gap.Objective
	demes []Deme

	// Sharding state: a plain archipelago owns all p.Demes demes
	// (shard nil, offset 0, tr nil meaning Loopback). A shard built by
	// NewShard or RestoreShard owns the contiguous global range
	// [offset, offset+len(demes)) and exchanges migrants through tr.
	shard  *Shard
	offset int
	tr     Transport

	epochs   int // completed epochs (the migration cursor)
	migrants int // immigrants accepted locally so far

	// fleetDone records that the epoch barrier reported some shard in
	// the fleet finished; for the loopback transport it simply mirrors
	// the local done status.
	fleetDone bool

	// DemeObs, if non-nil, receives every deme's per-generation events
	// in deme index order after each epoch. Aggregate events still flow
	// through the engine loop's Observer as usual.
	DemeObs DemeObserver
}

// New builds an archipelago of p.Demes behavioural GAP demes, deme i
// seeded with DemeSeed(p.Base.Seed, i).
func New(p Params) (*Archipelago, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	demes := make([]Deme, p.Demes)
	for i := range demes {
		bp := p.Base
		bp.Seed = DemeSeed(p.Base.Seed, i)
		g, err := gap.New(bp)
		if err != nil {
			return nil, fmt.Errorf("island: deme %d: %w", i, err)
		}
		demes[i] = g
	}
	return &Archipelago{p: p, obj: resolveObjective(p.Base), demes: demes}, nil
}

// NewWithDemes wraps caller-built demes (for example gapcirc.Driver
// instances, or a mix of behavioural and gate-level demes) in an
// archipelago. len(demes) must equal p.Demes; the caller owns seed
// derivation for demes it builds itself.
func NewWithDemes(p Params, demes []Deme) (*Archipelago, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	if len(demes) != p.Demes {
		return nil, fmt.Errorf("island: %d demes supplied for Demes=%d", len(demes), p.Demes)
	}
	for i, d := range demes {
		if d == nil {
			return nil, fmt.Errorf("island: deme %d is nil", i)
		}
	}
	ds := make([]Deme, len(demes))
	copy(ds, demes)
	return &Archipelago{p: p, obj: resolveObjective(p.Base), demes: ds}, nil
}

// NewShard builds this node's shard of a fleet-wide archipelago: the
// behavioural GAP demes in sh.Range(p.Demes), each seeded with
// DemeSeed(p.Base.Seed, globalIndex) — exactly the seed the same deme
// would get in a single-node run, which is what makes the K-node and
// 1-node trajectories comparable deme for deme. tr carries migration
// traffic (nil means Loopback, only sensible for sh.Nodes == 1).
func NewShard(p Params, sh Shard, tr Transport) (*Archipelago, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	if err := sh.Validate(p.Demes); err != nil {
		return nil, err
	}
	lo, hi := sh.Range(p.Demes)
	demes := make([]Deme, hi-lo)
	for i := range demes {
		bp := p.Base
		bp.Seed = DemeSeed(p.Base.Seed, lo+i)
		g, err := gap.New(bp)
		if err != nil {
			return nil, fmt.Errorf("island: deme %d: %w", lo+i, err)
		}
		demes[i] = g
	}
	s := sh
	return &Archipelago{p: p, obj: resolveObjective(p.Base), demes: demes,
		shard: &s, offset: lo, tr: tr}, nil
}

// withDefaults fills the zero-value knobs exactly once, at
// construction, so Snapshot records the resolved values.
func (p Params) withDefaults() Params {
	if p.Topology == "" {
		p.Topology = Ring
	}
	if p.MigrateEvery == 0 {
		p.MigrateEvery = DefaultMigrateEvery
	}
	if p.Base.MaxGenerations == 0 {
		p.Base.MaxGenerations = gap.DefaultMaxGenerations
	}
	return p
}

// resolveObjective mirrors gap.New: a nil objective means the paper's
// three-rule evaluator for the layout.
func resolveObjective(base gap.Params) gap.Objective {
	if base.Objective != nil {
		return base.Objective
	}
	return fitness.Evaluator{Layout: base.Layout, Weights: fitness.DefaultWeights}
}

// Params returns the archipelago configuration (defaults resolved) —
// useful after Restore, where the caller never held the original value.
func (a *Archipelago) Params() Params { return a.p }

// SetWorkers re-chooses the worker bound (0 = GOMAXPROCS). Workers is
// pure scheduling — it never changes the trajectory — so it is safe to
// set on a restored archipelago, and it is the one parameter a resume
// does not inherit from the snapshot.
func (a *Archipelago) SetWorkers(n int) { a.p.Workers = n }

// Demes returns the number of local islands (for a shard, the slice
// this node owns; Params().Demes is the global count).
func (a *Archipelago) Demes() int { return len(a.demes) }

// Shard returns the fleet placement and true if this archipelago is a
// shard of a distributed run.
func (a *Archipelago) Shard() (Shard, bool) {
	if a.shard == nil {
		return Shard{}, false
	}
	return *a.shard, true
}

// transport returns the migration transport, defaulting to Loopback so
// archipelagos built before sharding existed (and restored "island"
// snapshots) behave exactly as they always did.
func (a *Archipelago) transport() Transport {
	if a.tr == nil {
		return Loopback{}
	}
	return a.tr
}

// Deme returns island i (for inspection; mutating it mid-run breaks
// replay).
func (a *Archipelago) Deme(i int) Deme { return a.demes[i] }

// Epochs returns how many epochs (migration barriers) have completed.
func (a *Archipelago) Epochs() int { return a.epochs }

// Migrations returns how many immigrants have been accepted so far.
func (a *Archipelago) Migrations() int { return a.migrants }

// Step implements engine.Stepper: one epoch. Every deme advances by up
// to MigrateEvery generations — concurrently, on the bounded engine.Map
// pool — then the barrier migration runs single-threaded in deme index
// order. Because demes share no state between barriers and Map commits
// results in index order, the trajectory is identical for every worker
// count.
func (a *Archipelago) Step() error {
	events, err := engine.Map(nil, a.p.Workers, len(a.demes), func(i int) ([]engine.Event, error) {
		d := a.demes[i]
		var obs engine.Observer
		var rec *engine.Recorder
		if a.DemeObs != nil {
			rec = &engine.Recorder{}
			obs = rec
		}
		if err := engine.Steps(nil, d, obs, a.p.MigrateEvery); err != nil {
			return nil, err
		}
		if rec == nil {
			return nil, nil
		}
		return rec.Events(), nil
	})
	if err != nil {
		return err
	}
	if a.DemeObs != nil {
		for i, evs := range events {
			for _, ev := range evs {
				a.DemeObs.OnDemeGeneration(DemeEvent{Deme: a.offset + i, Event: ev})
			}
		}
	}
	a.epochs++
	if err := a.migrate(); err != nil {
		return err
	}
	// Done handshake: a deme finishing anywhere in the fleet ends the
	// archipelago in this epoch, exactly as a local deme finishing ends
	// a single-node run. For Loopback this just mirrors localDone.
	fleet, err := a.transport().Barrier(a.epochs, a.localDone())
	if err != nil {
		return fmt.Errorf("island: epoch %d barrier: %w", a.epochs, err)
	}
	a.fleetDone = fleet
	return nil
}

// migrate runs the barrier exchange — the single latch-then-commit
// implementation every transport shares. Every local deme's champion is
// latched first (so replacements cannot cascade within one barrier) and
// handed to the transport as epoch-stamped emigrants addressed ring-wise
// to global deme (g+1) mod Demes; the returned immigrants — however they
// travelled — are committed in global source order, each via the
// destination deme's own tournament draw. Non-Settler destinations are
// skipped; demes that already finished keep their final population
// untouched.
func (a *Archipelago) migrate() error {
	global := a.p.Demes
	if a.p.Topology != Ring || global < 2 {
		return nil
	}
	out := make([]Emigrant, len(a.demes))
	for i, d := range a.demes {
		b, _ := d.Best()
		g := a.offset + i
		out[i] = Emigrant{Epoch: a.epochs, From: g, To: (g + 1) % global, Genome: b.Clone()}
	}
	in, err := a.transport().Exchange(a.epochs, out)
	if err != nil {
		return fmt.Errorf("island: epoch %d exchange: %w", a.epochs, err)
	}
	// Each global deme emigrates at most once per epoch, so sorting by
	// source index makes the commit order unique regardless of how the
	// transport interleaved batches.
	sort.Slice(in, func(i, j int) bool { return in[i].From < in[j].From })
	for _, e := range in {
		li := e.To - a.offset
		if li < 0 || li >= len(a.demes) {
			return fmt.Errorf("island: immigrant %d -> %d lands outside local demes [%d, %d)",
				e.From, e.To, a.offset, a.offset+len(a.demes))
		}
		dst := a.demes[li]
		s, ok := dst.(Settler)
		if !ok || dst.Done() {
			continue
		}
		if err := s.Immigrate(e.Genome); err != nil {
			return fmt.Errorf("island: migration %d -> %d: %w", e.From, e.To, err)
		}
		a.migrants++
	}
	return nil
}

// localDone reports whether any local deme is finished.
func (a *Archipelago) localDone() bool {
	for _, d := range a.demes {
		if d.Done() {
			return true
		}
	}
	return false
}

// Done implements engine.Stepper: the archipelago is finished as soon
// as any deme is — a converged deme ends the whole search (its champion
// is the answer), an exhausted one means the budget ran out. For a
// shard, a deme finishing on any other node counts too (learned at the
// epoch barrier).
func (a *Archipelago) Done() bool {
	return a.fleetDone || a.localDone()
}

// Event implements engine.Stepper with the aggregate telemetry of the
// most recent epoch: Generation is the slowest deme's counter, BestEver
// and BestFitness the maxima across demes, the counters are summed, and
// MeanFitness is the mean of the deme means.
func (a *Archipelago) Event() engine.Event {
	var ev engine.Event
	for i, d := range a.demes {
		de := d.Event()
		if i == 0 || de.Generation < ev.Generation {
			ev.Generation = de.Generation
		}
		if de.BestEver > ev.BestEver {
			ev.BestEver = de.BestEver
		}
		if de.BestFitness > ev.BestFitness {
			ev.BestFitness = de.BestFitness
		}
		ev.MeanFitness += de.MeanFitness
		ev.Evaluations += de.Evaluations
		ev.Draws += de.Draws
		ev.Tournaments += de.Tournaments
		ev.Crossovers += de.Crossovers
		ev.Mutations += de.Mutations
		ev.Cycle += de.Cycle
		ev.LanesDone += de.LanesDone
	}
	ev.MeanFitness /= float64(len(a.demes))
	return ev
}

// Result summarizes the archipelago so far; valid at any epoch
// boundary.
type Result struct {
	// Converged is true once any deme reached its objective maximum.
	Converged bool
	// Generations is the slowest deme's completed generation count.
	Generations int
	// Best is the best individual across all demes; BestDeme is the
	// island that holds it.
	Best        genome.Extended
	BestFitness int
	BestDeme    int
	// MaxFitness is the objective's maximum (0 if the archipelago was
	// assembled from demes with unknown objectives).
	MaxFitness int
	// Draws sums the random samples consumed by all demes.
	Draws uint64
	// Migrations counts accepted immigrants across all barriers.
	Migrations int
}

// Result reports the archipelago outcome so far.
func (a *Archipelago) Result() Result {
	r := Result{Migrations: a.migrants}
	if a.obj != nil {
		r.MaxFitness = a.obj.Max()
	}
	for i, d := range a.demes {
		b, f := d.Best()
		if i == 0 || f > r.BestFitness {
			r.Best = b.Clone()
			r.BestFitness = f
			r.BestDeme = i
		}
		ev := d.Event()
		if i == 0 || ev.Generation < r.Generations {
			r.Generations = ev.Generation
		}
		r.Draws += ev.Draws
		if c, ok := d.(converger); ok && c.Converged() {
			r.Converged = true
		}
	}
	return r
}

// RunCtx drives the archipelago to completion under ctx, reporting one
// aggregate Event per epoch to obs (nil for none). Cancellation lands
// on the next epoch boundary; the partial Result stays valid and the
// run can continue — from this value or from a Snapshot.
func (a *Archipelago) RunCtx(ctx context.Context, obs engine.Observer) (Result, error) {
	err := engine.Run(ctx, a, obs)
	return a.Result(), err
}
