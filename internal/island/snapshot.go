package island

import (
	"fmt"

	"leonardo/internal/engine"
	"leonardo/internal/gap"
	"leonardo/internal/gapcirc"
	"leonardo/internal/genome"
)

// Checkpointing for the archipelago. A snapshot is the archipelago
// header — resolved parameters plus the migration cursor — followed by
// one length-prefixed sub-snapshot per deme, each a complete snapshot
// in its own kind ("gap" for behavioural demes, "gapcirc" for
// gate-level ones). Restore dispatches on each sub-snapshot's kind, so
// mixed archipelagos round-trip too. Snapshots are only valid at epoch
// boundaries, which the engine loop guarantees between Steps.

const (
	snapKind    = "island"
	snapVersion = 1
)

// Snapshot serializes the complete archipelago state.
func (a *Archipelago) Snapshot() []byte {
	e := engine.NewEnc(snapKind, snapVersion)
	e.Int(a.p.Demes)
	e.Int(a.p.MigrateEvery)
	e.Blob([]byte(a.p.Topology))
	// Base parameters, mirrored from the gap snapshot layout (the
	// objective and any warm-start population are not serialized, as
	// there).
	e.Int(a.p.Base.Layout.Steps)
	e.Int(a.p.Base.Layout.Legs)
	e.Int(a.p.Base.PopulationSize)
	e.F64(a.p.Base.SelectionThreshold)
	e.F64(a.p.Base.CrossoverThreshold)
	e.Int(a.p.Base.MutationsPerGeneration)
	e.Int(a.p.Base.MaxGenerations)
	e.U64(a.p.Base.Seed)
	e.Bool(a.p.Base.RecordHistory)
	// Migration cursor.
	e.Int(a.epochs)
	e.Int(a.migrants)
	// Per-deme sub-snapshots, in deme index order.
	for _, d := range a.demes {
		e.Blob(d.Snapshot())
	}
	return e.Bytes()
}

// Restore rebuilds an archipelago from a Snapshot. obj supplies the
// per-deme objective exactly as in gap.Restore (nil means the paper's
// three-rule evaluator); it must match the original run's objective for
// the continuation to be meaningful. The restored archipelago continues
// bit-identically to one that was never interrupted.
func Restore(data []byte, obj gap.Objective) (*Archipelago, error) {
	d, err := engine.NewDec(data, snapKind)
	if err != nil {
		return nil, err
	}
	if d.Version != snapVersion {
		return nil, fmt.Errorf("island: snapshot version %d, want %d", d.Version, snapVersion)
	}
	p := Params{
		Demes:        d.Int(),
		MigrateEvery: d.Int(),
		Topology:     Topology(d.Blob()),
		Base: gap.Params{
			Layout:                 genome.Layout{Steps: d.Int(), Legs: d.Int()},
			PopulationSize:         d.Int(),
			SelectionThreshold:     d.F64(),
			CrossoverThreshold:     d.F64(),
			MutationsPerGeneration: d.Int(),
			MaxGenerations:         d.Int(),
			Seed:                   d.U64(),
			RecordHistory:          d.Bool(),
			Objective:              obj,
		},
	}
	epochs := d.Int()
	migrants := d.Int()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("island: snapshot parameters invalid: %w", err)
	}
	if p.MigrateEvery <= 0 || p.Base.MaxGenerations <= 0 {
		return nil, fmt.Errorf("island: snapshot has unresolved defaults (interval %d, cap %d)",
			p.MigrateEvery, p.Base.MaxGenerations)
	}
	if epochs < 0 || migrants < 0 {
		return nil, fmt.Errorf("island: snapshot cursor (%d epochs, %d migrants) is negative", epochs, migrants)
	}
	demes := make([]Deme, p.Demes)
	for i := range demes {
		sub := d.Blob()
		if err := d.Err(); err != nil {
			return nil, err
		}
		kind, err := engine.SnapshotKind(sub)
		if err != nil {
			return nil, fmt.Errorf("island: deme %d: %w", i, err)
		}
		switch kind {
		case "gap":
			g, err := gap.Restore(sub, obj)
			if err != nil {
				return nil, fmt.Errorf("island: deme %d: %w", i, err)
			}
			demes[i] = g
		case "gapcirc":
			dr, err := gapcirc.RestoreDriver(sub)
			if err != nil {
				return nil, fmt.Errorf("island: deme %d: %w", i, err)
			}
			demes[i] = dr
		case "lanedemes":
			// A single-lane group round-trips as an ordinary deme (its
			// view's Snapshot is the group snapshot). A multi-lane group
			// embedded per deme would duplicate the shared simulator; such
			// archipelagos snapshot through the "lanepack" kind instead.
			g, err := gapcirc.RestoreLaneDemes(sub)
			if err != nil {
				return nil, fmt.Errorf("island: deme %d: %w", i, err)
			}
			if g.NumDemes() != 1 {
				return nil, fmt.Errorf("island: deme %d is a %d-lane group; lane-packed archipelagos restore via RestoreLanePack",
					i, g.NumDemes())
			}
			demes[i] = g.Demes()[0]
		default:
			return nil, fmt.Errorf("island: deme %d has unknown snapshot kind %q", i, kind)
		}
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return &Archipelago{
		p:        p,
		obj:      resolveObjective(p.Base),
		demes:    demes,
		epochs:   epochs,
		migrants: migrants,
	}, nil
}
