package island

import (
	"fmt"

	"leonardo/internal/engine"
	"leonardo/internal/gap"
	"leonardo/internal/gapcirc"
	"leonardo/internal/genome"
)

// Checkpointing for the archipelago. A snapshot is the archipelago
// header — resolved parameters plus the migration cursor — followed by
// one length-prefixed sub-snapshot per deme, each a complete snapshot
// in its own kind ("gap" for behavioural demes, "gapcirc" for
// gate-level ones). Restore dispatches on each sub-snapshot's kind, so
// mixed archipelagos round-trip too. Snapshots are only valid at epoch
// boundaries, which the engine loop guarantees between Steps.

const (
	snapKind    = "island"
	snapVersion = 1
)

// encodeHeader writes the archipelago parameter header — the exact
// byte layout shared by the "island" and "cluster" kinds, which is what
// lets MergeShardSnapshots reassemble shard snapshots into a
// byte-identical single-node snapshot.
func encodeHeader(e *engine.Enc, p Params) {
	e.Int(p.Demes)
	e.Int(p.MigrateEvery)
	e.Blob([]byte(p.Topology))
	// Base parameters, mirrored from the gap snapshot layout (the
	// objective and any warm-start population are not serialized, as
	// there).
	e.Int(p.Base.Layout.Steps)
	e.Int(p.Base.Layout.Legs)
	e.Int(p.Base.PopulationSize)
	e.F64(p.Base.SelectionThreshold)
	e.F64(p.Base.CrossoverThreshold)
	e.Int(p.Base.MutationsPerGeneration)
	e.Int(p.Base.MaxGenerations)
	e.U64(p.Base.Seed)
	e.Bool(p.Base.RecordHistory)
}

// decodeHeader reads the parameter header written by encodeHeader. obj
// is attached as the per-deme objective (nil means the paper's
// three-rule evaluator).
func decodeHeader(d *engine.Dec, obj gap.Objective) Params {
	return Params{
		Demes:        d.Int(),
		MigrateEvery: d.Int(),
		Topology:     Topology(d.Blob()),
		Base: gap.Params{
			Layout:                 genome.Layout{Steps: d.Int(), Legs: d.Int()},
			PopulationSize:         d.Int(),
			SelectionThreshold:     d.F64(),
			CrossoverThreshold:     d.F64(),
			MutationsPerGeneration: d.Int(),
			MaxGenerations:         d.Int(),
			Seed:                   d.U64(),
			RecordHistory:          d.Bool(),
			Objective:              obj,
		},
	}
}

// validateHeader rejects decoded parameters that a constructor could
// never have produced (defaults are resolved at construction, before
// any snapshot is taken).
func validateHeader(p Params, epochs, migrants int) error {
	if err := p.Validate(); err != nil {
		return fmt.Errorf("island: snapshot parameters invalid: %w", err)
	}
	if p.MigrateEvery <= 0 || p.Base.MaxGenerations <= 0 {
		return fmt.Errorf("island: snapshot has unresolved defaults (interval %d, cap %d)",
			p.MigrateEvery, p.Base.MaxGenerations)
	}
	if epochs < 0 || migrants < 0 {
		return fmt.Errorf("island: snapshot cursor (%d epochs, %d migrants) is negative", epochs, migrants)
	}
	return nil
}

// Snapshot serializes the complete archipelago state. A plain
// archipelago snapshots as the "island" kind; a shard (NewShard /
// RestoreShard) as the "cluster" kind, which additionally records the
// fleet placement and carries only the local demes.
func (a *Archipelago) Snapshot() []byte {
	if a.shard != nil {
		return a.shardSnapshot()
	}
	e := engine.NewEnc(snapKind, snapVersion)
	encodeHeader(e, a.p)
	// Migration cursor.
	e.Int(a.epochs)
	e.Int(a.migrants)
	// Per-deme sub-snapshots, in deme index order.
	for _, d := range a.demes {
		e.Blob(d.Snapshot())
	}
	return e.Bytes()
}

// Restore rebuilds an archipelago from a Snapshot. obj supplies the
// per-deme objective exactly as in gap.Restore (nil means the paper's
// three-rule evaluator); it must match the original run's objective for
// the continuation to be meaningful. The restored archipelago continues
// bit-identically to one that was never interrupted.
func Restore(data []byte, obj gap.Objective) (*Archipelago, error) {
	d, err := engine.NewDec(data, snapKind)
	if err != nil {
		return nil, err
	}
	if d.Version != snapVersion {
		return nil, fmt.Errorf("island: snapshot version %d, want %d", d.Version, snapVersion)
	}
	p := decodeHeader(d, obj)
	epochs := d.Int()
	migrants := d.Int()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if err := validateHeader(p, epochs, migrants); err != nil {
		return nil, err
	}
	demes := make([]Deme, p.Demes)
	for i := range demes {
		sub := d.Blob()
		if err := d.Err(); err != nil {
			return nil, err
		}
		dm, err := restoreDeme(sub, obj, i)
		if err != nil {
			return nil, err
		}
		demes[i] = dm
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return &Archipelago{
		p:        p,
		obj:      resolveObjective(p.Base),
		demes:    demes,
		epochs:   epochs,
		migrants: migrants,
	}, nil
}

// restoreDeme rebuilds deme i (global index, for error context) from
// its sub-snapshot, dispatching on the sub-snapshot's kind so mixed
// archipelagos round-trip too.
func restoreDeme(sub []byte, obj gap.Objective, i int) (Deme, error) {
	kind, err := engine.SnapshotKind(sub)
	if err != nil {
		return nil, fmt.Errorf("island: deme %d: %w", i, err)
	}
	switch kind {
	case "gap":
		g, err := gap.Restore(sub, obj)
		if err != nil {
			return nil, fmt.Errorf("island: deme %d: %w", i, err)
		}
		return g, nil
	case "gapcirc":
		dr, err := gapcirc.RestoreDriver(sub)
		if err != nil {
			return nil, fmt.Errorf("island: deme %d: %w", i, err)
		}
		return dr, nil
	case "lanedemes":
		// A single-lane group round-trips as an ordinary deme (its
		// view's Snapshot is the group snapshot). A multi-lane group
		// embedded per deme would duplicate the shared simulator; such
		// archipelagos snapshot through the "lanepack" kind instead.
		g, err := gapcirc.RestoreLaneDemes(sub)
		if err != nil {
			return nil, fmt.Errorf("island: deme %d: %w", i, err)
		}
		if g.NumDemes() != 1 {
			return nil, fmt.Errorf("island: deme %d is a %d-lane group; lane-packed archipelagos restore via RestoreLanePack",
				i, g.NumDemes())
		}
		return g.Demes()[0], nil
	default:
		return nil, fmt.Errorf("island: deme %d has unknown snapshot kind %q", i, kind)
	}
}
