package island

import (
	"bytes"
	"fmt"

	"leonardo/internal/engine"
	"leonardo/internal/gap"
)

// The "cluster" snapshot kind checkpoints one shard of a distributed
// archipelago: the fleet placement (Nodes, Index), the same parameter
// header as the "island" kind, the shard's migration cursor, the
// fleet-done flag learned at the last barrier, and the local demes'
// sub-snapshots. K such shard snapshots — one per node, all taken at
// the same epoch — merge losslessly into the byte-identical "island"
// snapshot a single-node run of the same parameters would have written
// (MergeShardSnapshots), which is the acceptance check the distributed
// differential tests pin.

const (
	clusterSnapKind    = "cluster"
	clusterSnapVersion = 1
)

// ClusterSnapKind is the snapshot kind written by shard archipelagos.
const ClusterSnapKind = clusterSnapKind

// shardSnapshot serializes a shard (called from Snapshot when the
// archipelago was built by NewShard or RestoreShard).
func (a *Archipelago) shardSnapshot() []byte {
	e := engine.NewEnc(clusterSnapKind, clusterSnapVersion)
	e.Int(a.shard.Nodes)
	e.Int(a.shard.Index)
	encodeHeader(e, a.p)
	e.Int(a.epochs)
	e.Int(a.migrants)
	e.Bool(a.fleetDone)
	for _, d := range a.demes {
		e.Blob(d.Snapshot())
	}
	return e.Bytes()
}

// shardSnap is one decoded "cluster" snapshot.
type shardSnap struct {
	sh        Shard
	p         Params
	epochs    int
	migrants  int
	fleetDone bool
	demes     [][]byte // local deme sub-snapshots, in global order
}

// decodeShard parses a "cluster" snapshot without rebuilding demes.
func decodeShard(data []byte, obj gap.Objective) (*shardSnap, error) {
	d, err := engine.NewDec(data, clusterSnapKind)
	if err != nil {
		return nil, err
	}
	if d.Version != clusterSnapVersion {
		return nil, fmt.Errorf("island: cluster snapshot version %d, want %d", d.Version, clusterSnapVersion)
	}
	s := &shardSnap{}
	s.sh.Nodes = d.Int()
	s.sh.Index = d.Int()
	s.p = decodeHeader(d, obj)
	s.epochs = d.Int()
	s.migrants = d.Int()
	s.fleetDone = d.Bool()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if err := validateHeader(s.p, s.epochs, s.migrants); err != nil {
		return nil, err
	}
	if err := s.sh.Validate(s.p.Demes); err != nil {
		return nil, fmt.Errorf("island: cluster snapshot placement invalid: %w", err)
	}
	lo, hi := s.sh.Range(s.p.Demes)
	s.demes = make([][]byte, hi-lo)
	for i := range s.demes {
		s.demes[i] = d.Blob()
		if err := d.Err(); err != nil {
			return nil, err
		}
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return s, nil
}

// RestoreShard rebuilds a shard archipelago from a "cluster" snapshot.
// obj supplies the per-deme objective exactly as in Restore; tr is the
// migration transport for the continued run (nil means Loopback, only
// sensible for a 1-node fleet). The restored shard re-enters the fleet
// at its checkpointed epoch and replays bit-identically — peers
// acknowledge its re-sent emigrant batches as duplicates, and its own
// missed immigrants are re-read from the durable inbox (DESIGN.md §12).
func RestoreShard(data []byte, obj gap.Objective, tr Transport) (*Archipelago, error) {
	s, err := decodeShard(data, obj)
	if err != nil {
		return nil, err
	}
	lo, _ := s.sh.Range(s.p.Demes)
	demes := make([]Deme, len(s.demes))
	for i, sub := range s.demes {
		dm, err := restoreDeme(sub, obj, lo+i)
		if err != nil {
			return nil, err
		}
		demes[i] = dm
	}
	sh := s.sh
	return &Archipelago{
		p:         s.p,
		obj:       resolveObjective(s.p.Base),
		demes:     demes,
		shard:     &sh,
		offset:    lo,
		tr:        tr,
		epochs:    s.epochs,
		migrants:  s.migrants,
		fleetDone: s.fleetDone,
	}, nil
}

// MergeShardSnapshots reassembles the K shard snapshots of one fleet —
// all taken at the same epoch — into the canonical "island" snapshot:
// byte for byte what a single-node run of the same parameters would
// have written at that epoch. Parts may arrive in any order; each node
// index must appear exactly once.
func MergeShardSnapshots(parts [][]byte) ([]byte, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("island: merge of zero shard snapshots")
	}
	byIndex := make([]*shardSnap, len(parts))
	var ref *shardSnap
	var refHeader []byte
	for i, part := range parts {
		s, err := decodeShard(part, nil)
		if err != nil {
			return nil, fmt.Errorf("island: shard snapshot %d: %w", i, err)
		}
		if s.sh.Nodes != len(parts) {
			return nil, fmt.Errorf("island: shard %d says the fleet has %d nodes, %d snapshots supplied",
				s.sh.Index, s.sh.Nodes, len(parts))
		}
		if byIndex[s.sh.Index] != nil {
			return nil, fmt.Errorf("island: node index %d appears twice", s.sh.Index)
		}
		byIndex[s.sh.Index] = s
		he := engine.NewEnc("hdr", 1)
		encodeHeader(he, s.p)
		hb := he.Bytes()
		if ref == nil {
			ref, refHeader = s, hb
			continue
		}
		if !bytes.Equal(hb, refHeader) {
			return nil, fmt.Errorf("island: shard %d was checkpointed with different parameters than shard %d",
				s.sh.Index, ref.sh.Index)
		}
		if s.epochs != ref.epochs {
			return nil, fmt.Errorf("island: shard %d is at epoch %d, shard %d at %d — snapshots are from different barriers",
				s.sh.Index, s.epochs, ref.sh.Index, ref.epochs)
		}
	}
	e := engine.NewEnc(snapKind, snapVersion)
	encodeHeader(e, ref.p)
	e.Int(ref.epochs)
	migrants := 0
	for _, s := range byIndex {
		migrants += s.migrants
	}
	e.Int(migrants)
	for _, s := range byIndex {
		for _, sub := range s.demes {
			e.Blob(sub)
		}
	}
	return e.Bytes(), nil
}
