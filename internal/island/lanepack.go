package island

import (
	"context"
	"fmt"

	"leonardo/internal/engine"
	"leonardo/internal/gapcirc"
	"leonardo/internal/genome"
	"leonardo/internal/logic"
)

// Lane-packed archipelago: every deme is one SWAR lane of a single
// gate-level GAP circuit (gapcirc.LaneDemes), so advancing the
// archipelago one epoch costs one circuit pass per clock cycle for all
// demes together instead of one pass per deme. The island-model
// semantics are untouched — the lane views satisfy the same Deme and
// Settler contracts as behavioural GAPs, so ring migration,
// latch-then-commit, epoch barriers, and observers all run unchanged
// over lanes; only the stepping substrate differs.
//
// The equivalence is proved differentially (lanepack_test.go): a
// lane-packed archipelago replays, deme by deme and bit for bit, an
// archipelago of single-lane groups over the same seeds — including
// across a snapshot/resume boundary.

// MaxLaneDemes is the deme capacity of one lane-packed archipelago:
// the simulator's SWAR width.
const MaxLaneDemes = logic.Lanes

// LanePack is an archipelago whose demes are the lanes of one shared
// gate-level simulator. It implements engine.Stepper exactly like
// Archipelago (one Step = one epoch) and adds a snapshot format that
// stores the shared simulator once instead of once per deme.
type LanePack struct {
	arch  *Archipelago
	group *gapcirc.LaneDemes
}

// NewLanePack builds a lane-packed archipelago of p.Demes gate-level
// demes, deme i seeded with DemeSeed(p.Base.Seed, i) — the same
// derivation as New, so a lane-packed run is comparable
// deme-for-deme with a scalar run over the same master seed. p.Demes
// must not exceed MaxLaneDemes, and p.Base.Objective must be nil: the
// fitness function is baked into the circuit, which implements the
// paper's three-rule evaluator only.
func NewLanePack(p Params) (*LanePack, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Demes > MaxLaneDemes {
		return nil, fmt.Errorf("island: %d demes exceed the %d simulator lanes (the lane-packed backend hosts one deme per lane)",
			p.Demes, MaxLaneDemes)
	}
	if p.Base.Objective != nil {
		return nil, fmt.Errorf("island: lane-packed demes evaluate fitness in circuit logic; custom objectives need the behavioural backend")
	}
	p = p.withDefaults()
	seeds := make([]uint64, p.Demes)
	for i := range seeds {
		seeds[i] = DemeSeed(p.Base.Seed, i)
	}
	bp := p.Base
	bp.RecordHistory = false
	group, err := gapcirc.NewLaneDemes(bp, gapcirc.BuildOpts{}, seeds)
	if err != nil {
		return nil, err
	}
	return newLanePack(p, group, 0, 0)
}

// newLanePack wraps an existing lane-deme group in the archipelago
// machinery with the given migration cursor.
func newLanePack(p Params, group *gapcirc.LaneDemes, epochs, migrants int) (*LanePack, error) {
	views := group.Demes()
	demes := make([]Deme, len(views))
	for i, v := range views {
		demes[i] = v
	}
	arch, err := NewWithDemes(p, demes)
	if err != nil {
		return nil, err
	}
	arch.epochs = epochs
	arch.migrants = migrants
	return &LanePack{arch: arch, group: group}, nil
}

// Archipelago exposes the underlying archipelago (observers, Result,
// per-deme inspection). Its demes are *gapcirc.LaneDeme views; do not
// snapshot it directly — the per-deme sub-snapshot format would store
// the shared simulator once per lane. Use LanePack.Snapshot.
func (lp *LanePack) Archipelago() *Archipelago { return lp.arch }

// Group exposes the shared lane-deme group (for inspection; mutating
// it mid-run breaks replay).
func (lp *LanePack) Group() *gapcirc.LaneDemes { return lp.group }

// Params returns the archipelago configuration (defaults resolved).
func (lp *LanePack) Params() Params { return lp.arch.Params() }

// SetWorkers re-chooses the engine.Map worker bound, as on
// Archipelago. For a lane pack the demes contend on one simulator, so
// workers only bound the bookkeeping concurrency — the gate
// evaluation itself is inherently one pass for all lanes.
func (lp *LanePack) SetWorkers(n int) { lp.arch.SetWorkers(n) }

// Epochs returns how many epochs (migration barriers) have completed.
func (lp *LanePack) Epochs() int { return lp.arch.Epochs() }

// Migrations returns how many immigrants have been accepted so far.
func (lp *LanePack) Migrations() int { return lp.arch.Migrations() }

// Demes returns the number of lane demes.
func (lp *LanePack) Demes() int { return lp.arch.Demes() }

// Step implements engine.Stepper: one epoch (MigrateEvery generations
// of every lane, then the ring barrier), exactly as Archipelago.Step.
func (lp *LanePack) Step() error { return lp.arch.Step() }

// Done implements engine.Stepper.
func (lp *LanePack) Done() bool { return lp.arch.Done() }

// Event implements engine.Stepper.
func (lp *LanePack) Event() engine.Event { return lp.arch.Event() }

// Best returns the best individual across all lanes and its fitness.
func (lp *LanePack) Best() (genome.Extended, int) {
	r := lp.arch.Result()
	return r.Best, r.BestFitness
}

// Result reports the archipelago outcome so far.
func (lp *LanePack) Result() Result { return lp.arch.Result() }

// RunCtx drives the lane pack to completion under ctx, one aggregate
// Event per epoch to obs (nil for none).
func (lp *LanePack) RunCtx(ctx context.Context, obs engine.Observer) (Result, error) {
	err := engine.Run(ctx, lp, obs)
	return lp.arch.Result(), err
}

const (
	lanePackSnapKind    = "lanepack"
	lanePackSnapVersion = 1
)

// Snapshot serializes the lane-packed archipelago: the island header
// (resolved parameters plus the migration cursor, mirroring the
// "island" kind) followed by one sub-snapshot of the shared lane-deme
// group. Valid at epoch boundaries, which the engine loop guarantees
// between Steps.
func (lp *LanePack) Snapshot() []byte {
	a := lp.arch
	e := engine.NewEnc(lanePackSnapKind, lanePackSnapVersion)
	e.Int(a.p.Demes)
	e.Int(a.p.MigrateEvery)
	e.Blob([]byte(a.p.Topology))
	e.Int(a.p.Base.Layout.Steps)
	e.Int(a.p.Base.Layout.Legs)
	e.Int(a.p.Base.PopulationSize)
	e.F64(a.p.Base.SelectionThreshold)
	e.F64(a.p.Base.CrossoverThreshold)
	e.Int(a.p.Base.MutationsPerGeneration)
	e.Int(a.p.Base.MaxGenerations)
	e.U64(a.p.Base.Seed)
	e.Int(a.epochs)
	e.Int(a.migrants)
	e.Blob(lp.group.Snapshot())
	return e.Bytes()
}

// RestoreLanePack rebuilds a lane-packed archipelago from a Snapshot.
// The restored run continues bit-identically to one that was never
// interrupted (proved by the differential tests).
func RestoreLanePack(data []byte) (*LanePack, error) {
	d, err := engine.NewDec(data, lanePackSnapKind)
	if err != nil {
		return nil, err
	}
	if d.Version != lanePackSnapVersion {
		return nil, fmt.Errorf("island: lanepack snapshot version %d, want %d", d.Version, lanePackSnapVersion)
	}
	p := Params{
		Demes:        d.Int(),
		MigrateEvery: d.Int(),
		Topology:     Topology(d.Blob()),
	}
	p.Base.Layout = genome.Layout{Steps: d.Int(), Legs: d.Int()}
	p.Base.PopulationSize = d.Int()
	p.Base.SelectionThreshold = d.F64()
	p.Base.CrossoverThreshold = d.F64()
	p.Base.MutationsPerGeneration = d.Int()
	p.Base.MaxGenerations = d.Int()
	p.Base.Seed = d.U64()
	epochs := d.Int()
	migrants := d.Int()
	sub := d.Blob()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("island: lanepack snapshot parameters invalid: %w", err)
	}
	if p.Demes > MaxLaneDemes {
		return nil, fmt.Errorf("island: lanepack snapshot has %d demes, capacity is %d", p.Demes, MaxLaneDemes)
	}
	if p.MigrateEvery <= 0 || p.Base.MaxGenerations <= 0 {
		return nil, fmt.Errorf("island: lanepack snapshot has unresolved defaults (interval %d, cap %d)",
			p.MigrateEvery, p.Base.MaxGenerations)
	}
	if epochs < 0 || migrants < 0 {
		return nil, fmt.Errorf("island: lanepack snapshot cursor (%d epochs, %d migrants) is negative", epochs, migrants)
	}
	group, err := gapcirc.RestoreLaneDemes(sub)
	if err != nil {
		return nil, err
	}
	if group.NumDemes() != p.Demes {
		return nil, fmt.Errorf("island: lanepack snapshot header says %d demes, the group holds %d", p.Demes, group.NumDemes())
	}
	return newLanePack(p, group, epochs, migrants)
}
