package island

import (
	"bytes"
	"context"
	"testing"

	"leonardo/internal/engine"
	"leonardo/internal/fitness"
)

// TestWorkerCountInvariance is the archipelago determinism contract:
// the same parameters stepped on one worker and on eight produce
// byte-identical snapshots and identical best-fitness trajectories.
// Worker count is pure scheduling — engine.Map commits per-deme results
// in index order and migration runs single-threaded at the barrier, so
// nothing downstream may observe it.
func TestWorkerCountInvariance(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		type trace struct {
			snap  []byte
			bests []int
		}
		run := func(workers int) trace {
			p := endlessParams(seed)
			p.Workers = workers
			a, err := New(p)
			if err != nil {
				t.Fatal(err)
			}
			var tr trace
			obs := engine.FuncObserver(func(ev engine.Event) {
				tr.bests = append(tr.bests, ev.BestEver)
			})
			if err := engine.Steps(context.Background(), a, obs, 8); err != nil {
				t.Fatal(err)
			}
			tr.snap = a.Snapshot()
			return tr
		}
		one := run(1)
		eight := run(8)
		if !bytes.Equal(one.snap, eight.snap) {
			t.Fatalf("seed %d: snapshots differ between workers=1 and workers=8", seed)
		}
		if len(one.bests) != len(eight.bests) {
			t.Fatalf("seed %d: trajectory lengths differ: %d vs %d", seed, len(one.bests), len(eight.bests))
		}
		for i := range one.bests {
			if one.bests[i] != eight.bests[i] {
				t.Fatalf("seed %d: best-fitness trajectories diverge at epoch %d: %d vs %d",
					seed, i, one.bests[i], eight.bests[i])
			}
		}
	}
}

// TestWorkerCountInvarianceAcrossResume combines the two replay axes:
// a snapshot taken on 1 worker, resumed on 8 (and vice versa), must
// finish byte-identical to runs that never switched.
func TestWorkerCountInvarianceAcrossResume(t *testing.T) {
	p := endlessParams(13)
	p.Workers = 1
	a, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.Steps(context.Background(), a, nil, 4); err != nil {
		t.Fatal(err)
	}
	mid := a.Snapshot()

	finish := func(snapshot []byte, workers int) []byte {
		r, err := Restore(snapshot, unreachable{fitness.New()})
		if err != nil {
			t.Fatal(err)
		}
		r.SetWorkers(workers)
		if err := engine.Steps(context.Background(), r, nil, 4); err != nil {
			t.Fatal(err)
		}
		return r.Snapshot()
	}
	if !bytes.Equal(finish(mid, 1), finish(mid, 8)) {
		t.Fatal("resume diverges across worker counts")
	}
}
