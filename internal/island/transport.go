package island

import (
	"fmt"

	"leonardo/internal/genome"
)

// Migration transport: the latch-then-commit exchange of island.go
// factored behind an interface, so the same migration logic drives an
// in-process archipelago (Loopback), a sharded archipelago inside one
// test process, and a fleet of leonardod nodes over HTTP
// (internal/serve). There is exactly one latch/commit implementation —
// Archipelago.migrate — and transports only move epoch-stamped batches.
//
// Determinism contract (DESIGN.md §12): for epoch e, Exchange must
// return precisely the emigrants every shard latched at epoch e whose
// destination deme is local to this shard — no more, no fewer, no
// re-ordering requirements (the archipelago sorts immigrants by their
// global source index before committing). Each global deme index
// appears as a source at most once per epoch, so the sorted commit
// order is unique and the distributed trajectory replays the
// single-node one bit for bit.

// Emigrant is one latched champion in flight between demes. From and To
// are global deme indices (0 ≤ From,To < Params.Demes), and Epoch is
// the migration barrier that latched it.
type Emigrant struct {
	Epoch  int
	From   int
	To     int
	Genome genome.Extended
}

// Transport moves migration traffic for one archipelago (or one shard
// of it). Both methods are called exactly once per epoch, in order:
// Exchange immediately after the epoch's generations are stepped and
// the local emigrants latched, then Barrier with the shard's local
// done status.
type Transport interface {
	// Exchange hands the transport this shard's latched emigrants for
	// the epoch and returns the immigrants destined to this shard's
	// demes (its own loop-back emigrants included). Returning an empty
	// slice with a nil error means "no migration this epoch" — the
	// degraded mode a networked transport falls back to when a peer
	// misses the epoch deadline. A non-nil error aborts the run's
	// current step without committing anything.
	Exchange(epoch int, out []Emigrant) ([]Emigrant, error)

	// Barrier completes the epoch with a done handshake: every shard
	// reports whether it is locally finished (a deme converged or
	// exhausted its budget), and learns whether any shard in the fleet
	// is. This is what lets a convergence on one node end the whole
	// archipelago in the same epoch, exactly as a single-node run stops
	// the epoch any deme finishes.
	Barrier(epoch int, localDone bool) (fleetDone bool, err error)
}

// Loopback is the in-process transport: every deme is local, so the
// emigrant batch is returned unchanged and the fleet is done exactly
// when the local shard is. New and NewWithDemes use it implicitly.
type Loopback struct{}

// Exchange implements Transport.
func (Loopback) Exchange(_ int, out []Emigrant) ([]Emigrant, error) { return out, nil }

// Barrier implements Transport.
func (Loopback) Barrier(_ int, localDone bool) (bool, error) { return localDone, nil }

// Shard places one node inside a fleet: Nodes cooperating processes,
// this one holding Index. The global deme space [0, Demes) is split
// into contiguous blocks — shard k owns [k·Demes/Nodes, (k+1)·Demes/Nodes)
// — so merged shard snapshots concatenate back into the single-node
// deme order.
type Shard struct {
	// Nodes is the fleet size (at least 1).
	Nodes int
	// Index is this node's position, 0 ≤ Index < Nodes.
	Index int
}

// Validate reports whether the shard shape is usable for an
// archipelago of the given global deme count. Every shard must own at
// least one deme, so Nodes may not exceed demes.
func (s Shard) Validate(demes int) error {
	if s.Nodes < 1 {
		return fmt.Errorf("island: shard needs at least 1 node, got %d", s.Nodes)
	}
	if s.Index < 0 || s.Index >= s.Nodes {
		return fmt.Errorf("island: shard index %d outside fleet of %d", s.Index, s.Nodes)
	}
	if s.Nodes > demes {
		return fmt.Errorf("island: %d nodes cannot shard %d demes (every node needs a deme)", s.Nodes, demes)
	}
	return nil
}

// Range returns this shard's half-open global deme interval [lo, hi).
func (s Shard) Range(demes int) (lo, hi int) {
	return s.Index * demes / s.Nodes, (s.Index + 1) * demes / s.Nodes
}

// OwnerOf returns the shard index that owns global deme g in a fleet
// of nodes sharding demes demes.
func OwnerOf(nodes, demes, g int) int {
	for k := 0; k < nodes; k++ {
		lo := k * demes / nodes
		hi := (k + 1) * demes / nodes
		if g >= lo && g < hi {
			return k
		}
	}
	return -1
}
