package genome

import (
	"fmt"
	"strings"
)

// Layout describes the shape of a generalized gait genome: Steps walk
// steps for a robot with Legs legs, three bits per leg-step. The
// paper's Discipulus Simplex uses Layout{Steps: 2, Legs: 6}; the
// future-work extension ("bigger genomes") uses more steps.
type Layout struct {
	Steps int
	Legs  int
}

// PaperLayout is the layout used throughout the paper: 2 steps, 6 legs,
// 36 bits.
var PaperLayout = Layout{Steps: StepsPerGenome, Legs: Legs}

// Bits returns the genome length in bits for this layout.
func (ly Layout) Bits() int { return ly.Steps * ly.Legs * BitsPerLegStep }

// Validate reports an error for degenerate layouts.
func (ly Layout) Validate() error {
	if ly.Steps < 1 {
		return fmt.Errorf("genome: layout needs at least 1 step, got %d", ly.Steps)
	}
	if ly.Legs < 1 {
		return fmt.Errorf("genome: layout needs at least 1 leg, got %d", ly.Legs)
	}
	return nil
}

// Extended is a gait genome of arbitrary layout, stored as a BitString.
// Gene bit k of (step s, leg l) lives at bit (s*Legs+l)*BitsPerLegStep+k,
// matching the packed Genome layout when the layout is PaperLayout.
type Extended struct {
	Layout Layout
	Bits   BitString
}

// NewExtended allocates an all-zero extended genome for the layout.
func NewExtended(ly Layout) Extended {
	return Extended{Layout: ly, Bits: NewBitString(ly.Bits())}
}

// FromGenome converts a packed 36-bit genome to its extended form.
func FromGenome(g Genome) Extended {
	e := NewExtended(PaperLayout)
	for i := 0; i < Bits; i++ {
		e.Bits.Set(i, g.Bit(i))
	}
	return e
}

// Packed converts an extended genome with the paper layout back to the
// packed 36-bit representation. It panics on other layouts.
func (e Extended) Packed() Genome {
	if e.Layout != PaperLayout {
		panic(fmt.Sprintf("genome: Packed called on layout %+v", e.Layout))
	}
	var g Genome
	for i := 0; i < Bits; i++ {
		if e.Bits.Get(i) {
			g |= 1 << uint(i)
		}
	}
	return g
}

// Gene extracts the decoded gene for one leg in one step.
func (e Extended) Gene(step, leg int) LegGene {
	base := (step*e.Layout.Legs + leg) * BitsPerLegStep
	var b uint64
	if e.Bits.Get(base) {
		b |= 1
	}
	if e.Bits.Get(base + 1) {
		b |= 2
	}
	if e.Bits.Get(base + 2) {
		b |= 4
	}
	return LegGeneFromBits(b)
}

// SetGene stores the gene for one leg in one step.
func (e Extended) SetGene(step, leg int, gene LegGene) {
	base := (step*e.Layout.Legs + leg) * BitsPerLegStep
	b := gene.Bits()
	e.Bits.Set(base, b&1 != 0)
	e.Bits.Set(base+1, b&2 != 0)
	e.Bits.Set(base+2, b&4 != 0)
}

// Clone returns an independent deep copy.
func (e Extended) Clone() Extended {
	return Extended{Layout: e.Layout, Bits: e.Bits.Clone()}
}

// BitString is a fixed-length bit vector used as the genome substrate
// in the generalized GA processor. Bit 0 is the least significant bit
// of word 0.
type BitString struct {
	n     int
	words []uint64
}

// NewBitString allocates an all-zero bit string of n bits.
func NewBitString(n int) BitString {
	if n < 0 {
		panic("genome: negative BitString length")
	}
	return BitString{n: n, words: make([]uint64, (n+63)/64)}
}

// BitStringFromUint64 builds an n-bit string from the low n bits of v
// (n <= 64).
func BitStringFromUint64(v uint64, n int) BitString {
	if n > 64 {
		panic("genome: BitStringFromUint64 supports at most 64 bits")
	}
	b := NewBitString(n)
	if n > 0 {
		if n < 64 {
			v &= uint64(1)<<uint(n) - 1
		}
		b.words[0] = v
	}
	return b
}

// Len returns the number of bits.
func (b BitString) Len() int { return b.n }

// Get returns bit i.
func (b BitString) Get(i int) bool {
	b.check(i)
	return b.words[i/64]>>(uint(i)%64)&1 != 0
}

// Set sets bit i to v.
func (b BitString) Set(i int, v bool) {
	b.check(i)
	if v {
		b.words[i/64] |= 1 << (uint(i) % 64)
	} else {
		b.words[i/64] &^= 1 << (uint(i) % 64)
	}
}

// Flip inverts bit i.
func (b BitString) Flip(i int) {
	b.check(i)
	b.words[i/64] ^= 1 << (uint(i) % 64)
}

func (b BitString) check(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("genome: bit index %d out of range [0,%d)", i, b.n))
	}
}

// OnesCount returns the number of set bits.
func (b BitString) OnesCount() int {
	n := 0
	for _, w := range b.words {
		for w != 0 {
			w &= w - 1
			n++
		}
	}
	return n
}

// Clone returns an independent deep copy.
func (b BitString) Clone() BitString {
	c := BitString{n: b.n, words: make([]uint64, len(b.words))}
	copy(c.words, b.words)
	return c
}

// CopyFrom overwrites this bit string with the contents of src, which
// must have the same length. No allocation.
func (b BitString) CopyFrom(src BitString) {
	if b.n != src.n {
		panic("genome: CopyFrom of unequal-length bit strings")
	}
	copy(b.words, src.words)
}

// SwapTail exchanges bits [point, Len) between two equal-length bit
// strings in place — single-point crossover without allocating. The
// cut point must satisfy 0 < point < Len.
func (b BitString) SwapTail(o BitString, point int) {
	if b.n != o.n {
		panic("genome: SwapTail of unequal-length bit strings")
	}
	if point <= 0 || point >= b.n {
		panic(fmt.Sprintf("genome: crossover point %d out of range (0,%d)", point, b.n))
	}
	w := point / 64
	// Partial first word: swap only the bits at and above the offset.
	if off := uint(point) % 64; off != 0 {
		mask := ^uint64(0) << off
		d := (b.words[w] ^ o.words[w]) & mask
		b.words[w] ^= d
		o.words[w] ^= d
		w++
	}
	for ; w < len(b.words); w++ {
		b.words[w], o.words[w] = o.words[w], b.words[w]
	}
}

// Equal reports whether two bit strings have identical length and bits.
func (b BitString) Equal(o BitString) bool {
	if b.n != o.n {
		return false
	}
	for i := range b.words {
		if b.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// CrossoverBits performs single-point crossover on two equal-length bit
// strings, cutting after bit position point (0 < point < Len), swapping
// the high parts. The inputs are not modified.
func CrossoverBits(a, b BitString, point int) (BitString, BitString) {
	if a.n != b.n {
		panic("genome: crossover of unequal-length bit strings")
	}
	c, d := a.Clone(), b.Clone()
	c.SwapTail(d, point)
	return c, d
}

// Words returns a copy of the backing words, least-significant word
// first. Bits at and above Len are zero.
func (b BitString) Words() []uint64 {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return w
}

// BitStringFromWords builds an n-bit string from backing words (least
// significant first), masking any bits at or above n. It panics if the
// word count does not match the length.
func BitStringFromWords(words []uint64, n int) BitString {
	b := NewBitString(n)
	if len(words) != len(b.words) {
		panic(fmt.Sprintf("genome: %d words cannot back a %d-bit string", len(words), n))
	}
	copy(b.words, words)
	if r := uint(n) % 64; r != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= uint64(1)<<r - 1
	}
	return b
}

// Uint64 returns the low min(Len,64) bits as a uint64.
func (b BitString) Uint64() uint64 {
	if len(b.words) == 0 {
		return 0
	}
	return b.words[0]
}

// String renders the bit string most-significant-bit first.
func (b BitString) String() string {
	var sb strings.Builder
	for i := b.n - 1; i >= 0; i-- {
		if b.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}
