package genome

import "testing"

// FuzzParse checks that arbitrary strings never panic the parser and
// that everything it accepts round-trips exactly.
func FuzzParse(f *testing.F) {
	f.Add("000000000000000000000000000000000000")
	f.Add("011 000 011 000 011 000 000 011 000 011 000 011")
	f.Add("")
	f.Add("1x0")
	f.Fuzz(func(t *testing.T, s string) {
		g, err := Parse(s)
		if err != nil {
			return
		}
		if !g.Valid() {
			t.Fatalf("Parse(%q) returned invalid genome %v", s, g)
		}
		back, err := Parse(g.String())
		if err != nil || back != g {
			t.Fatalf("round trip failed for %q -> %v", s, g)
		}
	})
}

// FuzzCrossover checks structural invariants for arbitrary parents and
// points.
func FuzzCrossover(f *testing.F) {
	f.Add(uint64(0), uint64(0), 1)
	f.Add(^uint64(0), uint64(0x123456789), 35)
	f.Fuzz(func(t *testing.T, ra, rb uint64, p int) {
		a, b := Genome(ra)&Mask, Genome(rb)&Mask
		point := 1 + absInt(p)%(Bits-1)
		c, d := Crossover(a, b, point)
		if !c.Valid() || !d.Valid() {
			t.Fatal("invalid child")
		}
		// Bit conservation per position.
		for i := 0; i < Bits; i++ {
			if (a.Bit(i) != b.Bit(i)) != (c.Bit(i) != d.Bit(i)) {
				t.Fatalf("bit %d not conserved", i)
			}
		}
	})
}

// FuzzGenomeRoundTrip checks every representation change a genome can
// go through — packed word, extended bit string, backing words, genes,
// canonical text — on arbitrary 36-bit values: each round trip must be
// exact.
func FuzzGenomeRoundTrip(f *testing.F) {
	f.Add(uint64(0))
	f.Add(^uint64(0))
	f.Add(uint64(0x923456789))
	f.Add(uint64(1) << 35)
	f.Fuzz(func(t *testing.T, raw uint64) {
		g := Genome(raw) & Mask
		e := FromGenome(g)
		if got := e.Packed(); got != g {
			t.Fatalf("Packed(FromGenome(%v)) = %v", g, got)
		}
		if e.Bits.Uint64() != uint64(g) {
			t.Fatalf("extended bits %#x, packed %#x", e.Bits.Uint64(), uint64(g))
		}
		back := BitStringFromWords(e.Bits.Words(), e.Bits.Len())
		if !back.Equal(e.Bits) {
			t.Fatal("Words/BitStringFromWords round trip changed the bits")
		}
		if !BitStringFromUint64(uint64(g), Bits).Equal(e.Bits) {
			t.Fatal("BitStringFromUint64 disagrees with FromGenome")
		}
		// Gene-level decode/encode rebuilds the identical bit string.
		r := NewExtended(PaperLayout)
		for s := 0; s < PaperLayout.Steps; s++ {
			for l := 0; l < PaperLayout.Legs; l++ {
				r.SetGene(s, l, e.Gene(s, l))
			}
		}
		if !r.Bits.Equal(e.Bits) {
			t.Fatal("gene decode/encode round trip changed the bits")
		}
		// The canonical textual form parses back to the same genome.
		if back, err := Parse(g.String()); err != nil || back != g {
			t.Fatalf("Parse(String) round trip failed for %v: %v", g, err)
		}
	})
}

func absInt(v int) int {
	if v < 0 {
		if v == -v { // MinInt
			return 0
		}
		return -v
	}
	return v
}
