package genome

import "testing"

// FuzzParse checks that arbitrary strings never panic the parser and
// that everything it accepts round-trips exactly.
func FuzzParse(f *testing.F) {
	f.Add("000000000000000000000000000000000000")
	f.Add("011 000 011 000 011 000 000 011 000 011 000 011")
	f.Add("")
	f.Add("1x0")
	f.Fuzz(func(t *testing.T, s string) {
		g, err := Parse(s)
		if err != nil {
			return
		}
		if !g.Valid() {
			t.Fatalf("Parse(%q) returned invalid genome %v", s, g)
		}
		back, err := Parse(g.String())
		if err != nil || back != g {
			t.Fatalf("round trip failed for %q -> %v", s, g)
		}
	})
}

// FuzzCrossover checks structural invariants for arbitrary parents and
// points.
func FuzzCrossover(f *testing.F) {
	f.Add(uint64(0), uint64(0), 1)
	f.Add(^uint64(0), uint64(0x123456789), 35)
	f.Fuzz(func(t *testing.T, ra, rb uint64, p int) {
		a, b := Genome(ra)&Mask, Genome(rb)&Mask
		point := 1 + absInt(p)%(Bits-1)
		c, d := Crossover(a, b, point)
		if !c.Valid() || !d.Valid() {
			t.Fatal("invalid child")
		}
		// Bit conservation per position.
		for i := 0; i < Bits; i++ {
			if (a.Bit(i) != b.Bit(i)) != (c.Bit(i) != d.Bit(i)) {
				t.Fatalf("bit %d not conserved", i)
			}
		}
	})
}

func absInt(v int) int {
	if v < 0 {
		if v == -v { // MinInt
			return 0
		}
		return -v
	}
	return v
}
