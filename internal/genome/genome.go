// Package genome implements the gait genome of Discipulus Simplex.
//
// The paper encodes one individual as a 36-bit bit-stream: two steps,
// six legs per step, three bits per leg-step. The three bits encode the
// micro-movement sequence a leg performs during one step:
//
//	bit 0: whether the leg first goes up (1) or down (0),
//	bit 1: whether the leg then goes forward (1) or backward (0),
//	bit 2: whether the leg goes up (1) or down (0) after the
//	       horizontal move.
//
// The search space is therefore 2^36 ~ 68.7 billion genomes.
//
// The package also provides the generalized N-step genome used by the
// paper's future-work direction ("bigger genomes ... where the final
// solution is not known"); the 2-step, 6-leg case is the paper's.
//
// This package is replay-critical: runs must replay bit-identically
// across processes and resumes (leolint enforces DESIGN.md §8).
//
//leo:deterministic
package genome

import (
	"fmt"
	"strings"
)

// Structural constants of the paper's encoding.
const (
	// Legs is the number of legs of Leonardo.
	Legs = 6
	// StepsPerGenome is the number of walk steps one genome encodes.
	StepsPerGenome = 2
	// BitsPerLegStep is the number of bits encoding one leg's movement
	// during one step.
	BitsPerLegStep = 3
	// Bits is the total genome length in bits: 2 steps x 6 legs x 3 bits.
	Bits = StepsPerGenome * Legs * BitsPerLegStep
	// SearchSpace is the size of the paper's search space, 2^36.
	SearchSpace = uint64(1) << Bits
)

// Leg identifies one of Leonardo's six legs. Legs are numbered front to
// rear on each side: L1, L2, L3 on the left and R1, R2, R3 on the right.
type Leg int

// Leg identifiers, front to rear.
const (
	L1 Leg = iota // left front
	L2            // left middle
	L3            // left rear
	R1            // right front
	R2            // right middle
	R3            // right rear
)

// String returns the conventional short name of the leg (e.g. "L1").
func (l Leg) String() string {
	if l < 0 || l >= Legs {
		return fmt.Sprintf("Leg(%d)", int(l))
	}
	side := "L"
	if l >= R1 {
		side = "R"
	}
	return fmt.Sprintf("%s%d", side, int(l)%3+1)
}

// Left reports whether the leg is on the robot's left side.
func (l Leg) Left() bool { return l <= L3 }

// AllLegs lists the legs in genome order.
func AllLegs() [Legs]Leg { return [Legs]Leg{L1, L2, L3, R1, R2, R3} }

// LegGene is the decoded 3-bit movement plan for one leg during one step.
// The leg performs three micro-movements in order: a vertical move
// (RaiseFirst), a horizontal move (Forward), and a final vertical move
// (RaiseAfter).
type LegGene struct {
	// RaiseFirst is true if the leg goes up before the horizontal
	// move, false if it goes (or stays) down.
	RaiseFirst bool
	// Forward is true if the leg moves forward during the horizontal
	// phase, false if it moves backward (propulsion when on the
	// ground).
	Forward bool
	// RaiseAfter is true if the leg goes up after the horizontal move,
	// false if it goes down.
	RaiseAfter bool
}

// Bits packs the gene into its 3-bit encoding.
func (g LegGene) Bits() uint64 {
	var b uint64
	if g.RaiseFirst {
		b |= 1
	}
	if g.Forward {
		b |= 2
	}
	if g.RaiseAfter {
		b |= 4
	}
	return b
}

// LegGeneFromBits decodes a 3-bit value into a LegGene.
func LegGeneFromBits(b uint64) LegGene {
	return LegGene{
		RaiseFirst: b&1 != 0,
		Forward:    b&2 != 0,
		RaiseAfter: b&4 != 0,
	}
}

// Coherent reports whether the gene respects the paper's third fitness
// rule: the leg must be up before going forward (a swing happens in the
// air) and down before going backward (propulsion needs ground contact).
func (g LegGene) Coherent() bool { return g.RaiseFirst == g.Forward }

// String renders the gene as a compact three-symbol mnemonic, e.g.
// "U>D" for up, forward, down.
func (g LegGene) String() string {
	var sb strings.Builder
	if g.RaiseFirst {
		sb.WriteByte('U')
	} else {
		sb.WriteByte('D')
	}
	if g.Forward {
		sb.WriteByte('>')
	} else {
		sb.WriteByte('<')
	}
	if g.RaiseAfter {
		sb.WriteByte('U')
	} else {
		sb.WriteByte('D')
	}
	return sb.String()
}

// Genome is the paper's 36-bit individual, stored in the low bits of a
// uint64. Bit layout: bit index (step*Legs + leg)*BitsPerLegStep + k
// holds bit k of the gene for that leg in that step, with legs in
// AllLegs order.
type Genome uint64

// Mask keeps only the valid genome bits.
const Mask = Genome(SearchSpace - 1)

// New assembles a genome from its per-step, per-leg genes.
func New(steps [StepsPerGenome][Legs]LegGene) Genome {
	var g Genome
	for s := 0; s < StepsPerGenome; s++ {
		for l := 0; l < Legs; l++ {
			g |= Genome(steps[s][l].Bits()) << geneShift(s, Leg(l))
		}
	}
	return g
}

func geneShift(step int, leg Leg) uint {
	return uint((step*Legs + int(leg)) * BitsPerLegStep)
}

// Gene extracts the decoded gene for one leg in one step.
// Step must be 0 or 1; leg must be a valid Leg.
func (g Genome) Gene(step int, leg Leg) LegGene {
	return LegGeneFromBits(uint64(g>>geneShift(step, leg)) & 7)
}

// WithGene returns a copy of the genome with one leg-step gene replaced.
func (g Genome) WithGene(step int, leg Leg, gene LegGene) Genome {
	sh := geneShift(step, leg)
	return (g &^ (7 << sh)) | Genome(gene.Bits())<<sh
}

// Bit returns bit i of the genome (0 <= i < Bits).
func (g Genome) Bit(i int) bool { return g>>uint(i)&1 != 0 }

// FlipBit returns a copy of the genome with bit i flipped. Flipping a
// single bit is the paper's mutation operator.
func (g Genome) FlipBit(i int) Genome { return g ^ 1<<uint(i) }

// Crossover performs the paper's single-point crossover: both genomes
// are cut after bit position point (0 < point < Bits) and the high
// parts are swapped, producing two offspring.
func Crossover(a, b Genome, point int) (Genome, Genome) {
	low := Genome(1)<<uint(point) - 1
	high := Mask &^ low
	return a&low | b&high, b&low | a&high
}

// HammingDistance counts the bit positions at which a and b differ.
func HammingDistance(a, b Genome) int {
	x := uint64((a ^ b) & Mask)
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Steps decodes the whole genome into its per-step, per-leg genes.
func (g Genome) Steps() [StepsPerGenome][Legs]LegGene {
	var out [StepsPerGenome][Legs]LegGene
	for s := 0; s < StepsPerGenome; s++ {
		for l := 0; l < Legs; l++ {
			out[s][l] = g.Gene(s, Leg(l))
		}
	}
	return out
}

// String renders the genome as a binary string, most significant bit
// first, grouped by leg-step genes for readability.
func (g Genome) String() string {
	var sb strings.Builder
	for i := Bits - 1; i >= 0; i-- {
		if g.Bit(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
		if i != 0 && i%BitsPerLegStep == 0 {
			sb.WriteByte(' ')
		}
	}
	return sb.String()
}

// Describe renders a human-readable, per-step movement table such as
//
//	step 1: L1 U>D  L2 D<D  ...
//	step 2: ...
func (g Genome) Describe() string {
	var sb strings.Builder
	for s := 0; s < StepsPerGenome; s++ {
		fmt.Fprintf(&sb, "step %d:", s+1)
		for _, l := range AllLegs() {
			fmt.Fprintf(&sb, "  %s %s", l, g.Gene(s, l))
		}
		if s != StepsPerGenome-1 {
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// Parse parses a genome from a binary string as produced by String.
// Spaces and underscores are ignored. The string must contain exactly
// Bits binary digits.
func Parse(s string) (Genome, error) {
	var g Genome
	n := 0
	for _, r := range s {
		switch r {
		case ' ', '_':
			continue
		case '0':
			g <<= 1
		case '1':
			g = g<<1 | 1
		default:
			return 0, fmt.Errorf("genome: invalid character %q in %q", r, s)
		}
		n++
		if n > Bits {
			return 0, fmt.Errorf("genome: too many bits in %q (want %d)", s, Bits)
		}
	}
	if n != Bits {
		return 0, fmt.Errorf("genome: got %d bits in %q, want %d", n, s, Bits)
	}
	return g, nil
}

// Valid reports whether the value uses only the genome's 36 bits.
func (g Genome) Valid() bool { return g&^Mask == 0 }
