package genome

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLayoutValidate(t *testing.T) {
	if err := PaperLayout.Validate(); err != nil {
		t.Fatalf("paper layout invalid: %v", err)
	}
	if PaperLayout.Bits() != Bits {
		t.Fatalf("paper layout bits = %d, want %d", PaperLayout.Bits(), Bits)
	}
	for _, ly := range []Layout{{0, 6}, {2, 0}, {-1, 6}} {
		if err := ly.Validate(); err == nil {
			t.Errorf("layout %+v should be invalid", ly)
		}
	}
	if got := (Layout{Steps: 4, Legs: 6}).Bits(); got != 72 {
		t.Errorf("4-step layout bits = %d, want 72", got)
	}
}

func TestExtendedRoundTripPacked(t *testing.T) {
	f := func(raw uint64) bool {
		g := Genome(raw) & Mask
		return FromGenome(g).Packed() == g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExtendedGeneMatchesPacked(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		g := Genome(rng.Uint64()) & Mask
		e := FromGenome(g)
		for s := 0; s < StepsPerGenome; s++ {
			for l := 0; l < Legs; l++ {
				if e.Gene(s, l) != g.Gene(s, Leg(l)) {
					t.Fatalf("gene (%d,%d) mismatch", s, l)
				}
			}
		}
	}
}

func TestExtendedSetGene(t *testing.T) {
	e := NewExtended(Layout{Steps: 4, Legs: 6})
	gene := LegGene{RaiseFirst: true, Forward: true, RaiseAfter: true}
	e.SetGene(3, 5, gene)
	if got := e.Gene(3, 5); got != gene {
		t.Fatalf("Gene(3,5) = %v, want %v", got, gene)
	}
	if e.Bits.OnesCount() != 3 {
		t.Fatalf("OnesCount = %d, want 3", e.Bits.OnesCount())
	}
	e.SetGene(3, 5, LegGene{})
	if e.Bits.OnesCount() != 0 {
		t.Fatalf("clearing gene left %d bits set", e.Bits.OnesCount())
	}
}

func TestExtendedPackedPanicsOnOtherLayout(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Packed on non-paper layout should panic")
		}
	}()
	NewExtended(Layout{Steps: 4, Legs: 6}).Packed()
}

func TestBitStringBasics(t *testing.T) {
	b := NewBitString(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d", b.Len())
	}
	b.Set(0, true)
	b.Set(64, true)
	b.Set(129, true)
	if !b.Get(0) || !b.Get(64) || !b.Get(129) || b.Get(1) {
		t.Fatal("Set/Get mismatch")
	}
	if b.OnesCount() != 3 {
		t.Fatalf("OnesCount = %d, want 3", b.OnesCount())
	}
	b.Flip(64)
	if b.Get(64) || b.OnesCount() != 2 {
		t.Fatal("Flip failed")
	}
}

func TestBitStringOutOfRangePanics(t *testing.T) {
	b := NewBitString(8)
	for _, i := range []int{-1, 8, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Get(%d) should panic", i)
				}
			}()
			b.Get(i)
		}()
	}
}

func TestBitStringCloneIndependence(t *testing.T) {
	a := NewBitString(70)
	a.Set(69, true)
	b := a.Clone()
	b.Set(0, true)
	if a.Get(0) {
		t.Fatal("Clone shares storage")
	}
	if !b.Get(69) {
		t.Fatal("Clone lost bits")
	}
	if !a.Equal(a.Clone()) {
		t.Fatal("Equal(clone) = false")
	}
	if a.Equal(b) {
		t.Fatal("Equal after divergence = true")
	}
	if a.Equal(NewBitString(71)) {
		t.Fatal("Equal across lengths = true")
	}
}

func TestBitStringFromUint64(t *testing.T) {
	b := BitStringFromUint64(0b1011, 4)
	want := []bool{true, true, false, true}
	for i, w := range want {
		if b.Get(i) != w {
			t.Errorf("bit %d = %v, want %v", i, b.Get(i), w)
		}
	}
	if b.Uint64() != 0b1011 {
		t.Errorf("Uint64 = %b", b.Uint64())
	}
	// High bits beyond n are masked off.
	if got := BitStringFromUint64(^uint64(0), 4).OnesCount(); got != 4 {
		t.Errorf("masking failed: OnesCount = %d, want 4", got)
	}
	if s := BitStringFromUint64(0b1011, 4).String(); s != "1011" {
		t.Errorf("String = %q, want 1011", s)
	}
}

func TestCrossoverBitsMatchesPacked(t *testing.T) {
	f := func(ra, rb uint64, p uint8) bool {
		a, b := Genome(ra)&Mask, Genome(rb)&Mask
		point := 1 + int(p)%(Bits-1)
		wc, wd := Crossover(a, b, point)
		ec, ed := CrossoverBits(FromGenome(a).Bits, FromGenome(b).Bits, point)
		gc := Extended{Layout: PaperLayout, Bits: ec}.Packed()
		gd := Extended{Layout: PaperLayout, Bits: ed}.Packed()
		return gc == wc && gd == wd
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSwapTailMatchesCrossoverBits(t *testing.T) {
	f := func(av, bv uint64, pointSeed uint8) bool {
		n := 36
		point := 1 + int(pointSeed)%(n-1)
		a := BitStringFromUint64(av, n)
		b := BitStringFromUint64(bv, n)
		wantA, wantB := CrossoverBits(a, b, point)
		a.SwapTail(b, point)
		return a.Equal(wantA) && b.Equal(wantB)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSwapTailMultiWord(t *testing.T) {
	// Cross a 200-bit pair at every legal point against the bit-by-bit
	// definition, covering word-boundary and word-aligned cuts.
	const n = 200
	for point := 1; point < n; point++ {
		a, b := NewBitString(n), NewBitString(n)
		for i := 0; i < n; i++ {
			a.Set(i, i%3 == 0)
			b.Set(i, i%5 == 0)
		}
		want := make([]bool, 2*n)
		for i := 0; i < n; i++ {
			if i < point {
				want[i], want[n+i] = a.Get(i), b.Get(i)
			} else {
				want[i], want[n+i] = b.Get(i), a.Get(i)
			}
		}
		a.SwapTail(b, point)
		for i := 0; i < n; i++ {
			if a.Get(i) != want[i] || b.Get(i) != want[n+i] {
				t.Fatalf("point %d: mismatch at bit %d", point, i)
			}
		}
	}
}

func TestCopyFrom(t *testing.T) {
	src := BitStringFromUint64(0xDEADBEEF, 36)
	dst := NewBitString(36)
	dst.CopyFrom(src)
	if !dst.Equal(src) {
		t.Fatalf("CopyFrom: got %v want %v", dst, src)
	}
	src.Flip(0)
	if dst.Equal(src) {
		t.Fatal("CopyFrom must copy, not alias")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom of unequal lengths should panic")
		}
	}()
	dst.CopyFrom(NewBitString(35))
}

func TestSwapTailPanics(t *testing.T) {
	for _, point := range []int{0, 36, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("SwapTail at point %d should panic", point)
				}
			}()
			a, b := NewBitString(36), NewBitString(36)
			a.SwapTail(b, point)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SwapTail of unequal lengths should panic")
		}
	}()
	a, b := NewBitString(36), NewBitString(37)
	a.SwapTail(b, 5)
}

func TestCrossoverBitsPanics(t *testing.T) {
	a, b := NewBitString(8), NewBitString(9)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unequal lengths should panic")
			}
		}()
		CrossoverBits(a, b, 4)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("point 0 should panic")
			}
		}()
		CrossoverBits(a, a.Clone(), 0)
	}()
}

func TestExtendedCloneIndependence(t *testing.T) {
	e := NewExtended(PaperLayout)
	e.SetGene(0, 0, LegGene{Forward: true})
	c := e.Clone()
	c.SetGene(1, 5, LegGene{RaiseFirst: true})
	if e.Gene(1, 5) != (LegGene{}) {
		t.Fatal("Clone shares storage")
	}
}
