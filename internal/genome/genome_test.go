package genome

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestConstants(t *testing.T) {
	if Bits != 36 {
		t.Fatalf("Bits = %d, want 36 (paper: 2 steps x 6 legs x 3 bits)", Bits)
	}
	if SearchSpace != 1<<36 {
		t.Fatalf("SearchSpace = %d, want 2^36", SearchSpace)
	}
}

func TestLegString(t *testing.T) {
	want := map[Leg]string{L1: "L1", L2: "L2", L3: "L3", R1: "R1", R2: "R2", R3: "R3"}
	for leg, name := range want {
		if got := leg.String(); got != name {
			t.Errorf("Leg(%d).String() = %q, want %q", int(leg), got, name)
		}
	}
	if got := Leg(9).String(); got != "Leg(9)" {
		t.Errorf("out-of-range leg String() = %q", got)
	}
}

func TestLegSides(t *testing.T) {
	for _, l := range []Leg{L1, L2, L3} {
		if !l.Left() {
			t.Errorf("%v should be left", l)
		}
	}
	for _, l := range []Leg{R1, R2, R3} {
		if l.Left() {
			t.Errorf("%v should be right", l)
		}
	}
}

func TestLegGeneRoundTrip(t *testing.T) {
	for b := uint64(0); b < 8; b++ {
		g := LegGeneFromBits(b)
		if got := g.Bits(); got != b {
			t.Errorf("LegGeneFromBits(%d).Bits() = %d", b, got)
		}
	}
}

func TestLegGeneString(t *testing.T) {
	cases := map[LegGene]string{
		{RaiseFirst: true, Forward: true, RaiseAfter: false}:  "U>D",
		{RaiseFirst: false, Forward: false, RaiseAfter: true}: "D<U",
		{}: "D<D",
	}
	for g, want := range cases {
		if got := g.String(); got != want {
			t.Errorf("%+v.String() = %q, want %q", g, got, want)
		}
	}
}

func TestLegGeneCoherent(t *testing.T) {
	// Coherent: swing (forward) in the air, propulsion (backward) on
	// the ground.
	coherent := []LegGene{
		{RaiseFirst: true, Forward: true},
		{RaiseFirst: false, Forward: false},
	}
	incoherent := []LegGene{
		{RaiseFirst: false, Forward: true},
		{RaiseFirst: true, Forward: false},
	}
	for _, g := range coherent {
		if !g.Coherent() {
			t.Errorf("%v should be coherent", g)
		}
	}
	for _, g := range incoherent {
		if g.Coherent() {
			t.Errorf("%v should be incoherent", g)
		}
	}
}

func TestGeneRoundTripAllPositions(t *testing.T) {
	for s := 0; s < StepsPerGenome; s++ {
		for _, l := range AllLegs() {
			for b := uint64(0); b < 8; b++ {
				gene := LegGeneFromBits(b)
				g := Genome(0).WithGene(s, l, gene)
				if got := g.Gene(s, l); got != gene {
					t.Fatalf("step %d leg %v: got %v want %v", s, l, got, gene)
				}
				// No other position may be disturbed.
				for s2 := 0; s2 < StepsPerGenome; s2++ {
					for _, l2 := range AllLegs() {
						if s2 == s && l2 == l {
							continue
						}
						if got := g.Gene(s2, l2); got != (LegGene{}) {
							t.Fatalf("WithGene(%d,%v) disturbed (%d,%v): %v", s, l, s2, l2, got)
						}
					}
				}
			}
		}
	}
}

func TestNewMatchesWithGene(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		var steps [StepsPerGenome][Legs]LegGene
		var want Genome
		for s := 0; s < StepsPerGenome; s++ {
			for l := 0; l < Legs; l++ {
				steps[s][l] = LegGeneFromBits(uint64(rng.Intn(8)))
				want = want.WithGene(s, Leg(l), steps[s][l])
			}
		}
		if got := New(steps); got != want {
			t.Fatalf("New = %v, want %v", got, want)
		}
	}
}

func TestStepsRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		g := Genome(raw) & Mask
		return New(g.Steps()) == g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		g := Genome(raw) & Mask
		parsed, err := Parse(g.String())
		return err == nil && parsed == g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"01",
		strings.Repeat("0", 35),
		strings.Repeat("0", 37),
		strings.Repeat("0", 35) + "x",
	}
	for _, s := range cases {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
	// Separators are ignored.
	g, err := Parse(strings.Repeat("000 ", 11) + "0_01")
	if err != nil {
		t.Fatalf("Parse with separators: %v", err)
	}
	if g != 1 {
		t.Fatalf("Parse with separators = %v, want 1", g)
	}
}

func TestFlipBit(t *testing.T) {
	f := func(raw uint64, i uint8) bool {
		g := Genome(raw) & Mask
		bit := int(i) % Bits
		h := g.FlipBit(bit)
		// Exactly one bit differs, and double flip restores.
		return HammingDistance(g, h) == 1 && h.FlipBit(bit) == g && h.Bit(bit) != g.Bit(bit)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCrossoverProperties(t *testing.T) {
	f := func(ra, rb uint64, p uint8) bool {
		a, b := Genome(ra)&Mask, Genome(rb)&Mask
		point := 1 + int(p)%(Bits-1)
		c, d := Crossover(a, b, point)
		if !c.Valid() || !d.Valid() {
			return false
		}
		// Offspring bits come from the right parent on each side of
		// the cut.
		for i := 0; i < Bits; i++ {
			if i < point {
				if c.Bit(i) != a.Bit(i) || d.Bit(i) != b.Bit(i) {
					return false
				}
			} else {
				if c.Bit(i) != b.Bit(i) || d.Bit(i) != a.Bit(i) {
					return false
				}
			}
		}
		// Crossing the offspring back at the same point restores the
		// parents.
		e, f2 := Crossover(c, d, point)
		return e == a && f2 == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHammingDistance(t *testing.T) {
	if d := HammingDistance(0, Mask); d != Bits {
		t.Errorf("HammingDistance(0, all-ones) = %d, want %d", d, Bits)
	}
	if d := HammingDistance(5, 5); d != 0 {
		t.Errorf("HammingDistance(x, x) = %d, want 0", d)
	}
	f := func(ra, rb uint64) bool {
		a, b := Genome(ra)&Mask, Genome(rb)&Mask
		return HammingDistance(a, b) == HammingDistance(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDescribe(t *testing.T) {
	g := Genome(0).WithGene(0, L1, LegGene{RaiseFirst: true, Forward: true})
	d := g.Describe()
	if !strings.Contains(d, "step 1:") || !strings.Contains(d, "step 2:") {
		t.Errorf("Describe missing step headers: %q", d)
	}
	if !strings.Contains(d, "L1 U>D") {
		t.Errorf("Describe missing L1 gene: %q", d)
	}
}

func TestValid(t *testing.T) {
	if !Genome(Mask).Valid() {
		t.Error("Mask should be valid")
	}
	if Genome(SearchSpace).Valid() {
		t.Error("2^36 should be invalid")
	}
}
