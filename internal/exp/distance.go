package exp

import (
	"context"
	"fmt"
	"time"

	"leonardo/internal/gait"
	"leonardo/internal/gap"
	"leonardo/internal/genome"
	"leonardo/internal/robot"
	"leonardo/internal/stats"
)

// trialCycles is the length of an on-robot fitness trial: two gait
// cycles, matching the paper's "about five seconds" per genome at the
// default phase timing.
const trialCycles = 2

// robotTrialSeconds is the wall time one on-robot evaluation costs the
// physical machine.
const robotTrialSeconds = 5.0

// distanceObjective is the paper's rejected "first idea": measure
// fitness directly on the robot as distance travelled in a fixed
// trial. The target is the tripod's score — the best walk known.
type distanceObjective struct{ target int }

func (d distanceObjective) ScoreExtended(x genome.Extended) int {
	return robot.DistanceFitness(x, trialCycles)
}
func (d distanceObjective) Max() int { return d.target }

// A4DistanceFitness compares the paper's logic-rule fitness against
// the on-robot distance fitness it rejected: quality of the evolved
// walkers, and — decisively — the wall-clock cost on the physical
// robot ("the robot ... needs to try a genome for about five seconds
// ... This time is too long to be used in our case").
func A4DistanceFitness(ctx context.Context, cfg Config) (Table, error) {
	t := Table{
		ID:    "A4",
		Title: "Rule fitness vs on-robot distance fitness (the paper's rejected 'first idea')",
		Header: []string{"fitness", "converged", "mean gens", "evaluations",
			"robot time/run", "champion distance (mm)"},
	}
	n := min(cfg.runs(), 10)
	tripodScore := robot.DistanceFitness(genome.FromGenome(gait.Tripod()), trialCycles)

	// Rule-based evolution (the paper's design), seeds in parallel.
	type outcome struct {
		converged   bool
		gens, evals float64
		dist        float64
	}
	ruleOuts, err := mapSeeds(ctx, cfg, n, func(i int) (outcome, error) {
		p := gap.PaperParams(cfg.BaseSeed + 11000 + uint64(i))
		g, err := gap.New(p)
		if err != nil {
			return outcome{}, err
		}
		r, err := g.RunCtx(ctx, nil)
		if err != nil {
			return outcome{}, err
		}
		return outcome{
			converged: r.Converged,
			gens:      float64(r.Generations),
			evals:     float64(g.Ops().Evaluations),
			dist:      robot.Walk(r.Best, robot.Trial{Cycles: trialCycles}).DistanceMM,
		}, nil
	})
	if err != nil {
		return Table{}, err
	}
	var gens, evals, dist []float64
	conv := 0
	for _, o := range ruleOuts {
		if !o.converged {
			continue
		}
		conv++
		gens = append(gens, o.gens)
		evals = append(evals, o.evals)
		dist = append(dist, o.dist)
	}
	gs, es, ds := stats.Summarize(gens), stats.Summarize(evals), stats.Summarize(dist)
	// Logic fitness costs ~38 cycles per individual at 1 MHz: round
	// the per-run chip time to the E3 model.
	ruleTime := gap.PaperTiming().RunDuration(int(gs.Mean + 0.5))
	t.AddRow("three logic rules (paper)", fmt.Sprintf("%d/%d", conv, n),
		fmt.Sprintf("%.0f", gs.Mean), fmt.Sprintf("%.0f", es.Mean),
		fmtDuration(ruleTime), fmt.Sprintf("%.0f", ds.Mean))

	// On-robot distance evolution (the rejected idea), seeds in
	// parallel.
	outs, err := mapSeeds(ctx, cfg, n, func(i int) (outcome, error) {
		p := gap.PaperParams(cfg.BaseSeed + 12000 + uint64(i))
		p.Objective = distanceObjective{target: tripodScore}
		p.MaxGenerations = 3000
		g, err := gap.New(p)
		if err != nil {
			return outcome{}, err
		}
		r, err := g.RunCtx(ctx, nil)
		if err != nil {
			return outcome{}, err
		}
		return outcome{
			converged: r.Converged,
			gens:      float64(r.Generations),
			evals:     float64(g.Ops().Evaluations),
			dist:      robot.Walk(r.Best, robot.Trial{Cycles: trialCycles}).DistanceMM,
		}, nil
	})
	if err != nil {
		return Table{}, err
	}
	gens, evals, dist = nil, nil, nil
	conv = 0
	for _, o := range outs {
		if o.converged {
			conv++
		}
		gens = append(gens, o.gens)
		evals = append(evals, o.evals)
		dist = append(dist, o.dist)
	}
	gs, es, ds = stats.Summarize(gens), stats.Summarize(evals), stats.Summarize(dist)
	robotTime := time.Duration(es.Mean * robotTrialSeconds * float64(time.Second))
	t.AddRow(fmt.Sprintf("on-robot distance (target: tripod = %d)", tripodScore),
		fmt.Sprintf("%d/%d", conv, n),
		fmt.Sprintf("%.0f", gs.Mean), fmt.Sprintf("%.0f", es.Mean),
		fmtDuration(robotTime), fmt.Sprintf("%.0f", ds.Mean))

	t.Note("on-robot fitness needs %.0f s of physical walking per genome; at %.0f evaluations per run "+
		"that is %s of robot time — the quantitative version of the paper's reason for defining fitness "+
		"'only in terms of logic computations'.", robotTrialSeconds, es.Mean, fmtDuration(robotTime))
	return t, nil
}
