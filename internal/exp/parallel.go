package exp

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// mapSeeds evaluates f(0), ..., f(n-1) concurrently — each index is an
// independent seeded run — and returns the results in index order, so
// reports stay deterministic regardless of scheduling. A fixed pool of
// min(GOMAXPROCS, n) workers pulls indices from an atomic counter, so
// the goroutine count is bounded by the core count rather than by n.
func mapSeeds[T any](n int, f func(i int) T) []T {
	out := make([]T, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = f(i)
			}
		}()
	}
	wg.Wait()
	return out
}
