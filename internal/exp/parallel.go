package exp

import (
	"context"

	"leonardo/internal/engine"
)

// mapSeeds evaluates f(0), ..., f(n-1) concurrently — each index is an
// independent seeded run — and returns the results in index order, so
// reports stay deterministic regardless of scheduling. It delegates to
// the shared engine scheduler: cfg.Workers bounds the pool (<= 0 means
// GOMAXPROCS), the context cancels the sweep between tasks, and the
// first task error stops the sweep and is returned instead of panicking
// inside a worker goroutine.
func mapSeeds[T any](ctx context.Context, cfg Config, n int, f func(i int) (T, error)) ([]T, error) {
	return engine.Map(ctx, cfg.Workers, n, f)
}
