package exp

import (
	"runtime"
	"sync"
)

// mapSeeds evaluates f(0), ..., f(n-1) concurrently — each index is an
// independent seeded run — and returns the results in index order, so
// reports stay deterministic regardless of scheduling. Concurrency is
// bounded by GOMAXPROCS.
func mapSeeds[T any](n int, f func(i int) T) []T {
	out := make([]T, n)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i] = f(i)
		}(i)
	}
	wg.Wait()
	return out
}
