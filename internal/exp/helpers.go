package exp

import (
	"strings"

	"leonardo/internal/controller"
	"leonardo/internal/genome"
)

// newTraceController steps a walking controller through the gait
// cycle and reports, for each phase index queried in order, the step,
// the micro-movement, the raised legs, and the commanded pulse-width
// range across the twelve servo channels.
func newTraceController(x genome.Extended) func(phase int) (step int, move string, ups string, lo, hi int) {
	ctl := controller.NewExtended(x)
	return func(int) (int, string, string, int, int) {
		step := ctl.Step()
		move := ctl.Move().String()
		posture := ctl.Advance()
		var raised []string
		for l := 0; l < x.Layout.Legs; l++ {
			if posture.Up[l] {
				raised = append(raised, genome.Leg(l).String())
			}
		}
		ups := strings.Join(raised, " ")
		if ups == "" {
			ups = "(none)"
		}
		pulses := ctl.ServoPulses()
		lo, hi := pulses[0], pulses[0]
		for _, p := range pulses {
			if p < lo {
				lo = p
			}
			if p > hi {
				hi = p
			}
		}
		return step, move, ups, lo, hi
	}
}
