package exp

import (
	"context"
	"fmt"
	"time"

	"leonardo/internal/gap"
	"leonardo/internal/mcu"
	"leonardo/internal/stats"
)

// A5Processor quantifies the paper's central design choice — "In our
// approach we want to avoid the use of processors" — by running the
// same genetic algorithm as firmware on the processor-based control
// board (§2: the Khepera-derived card) and comparing cycle costs with
// the evolvable-hardware GAP at the same 1 MHz clock.
func A5Processor(ctx context.Context, cfg Config) (Table, error) {
	t := Table{
		ID:    "A5",
		Title: "Processor board vs evolvable hardware at 1 MHz (same GA, same parameters)",
		Header: []string{"implementation", "converged", "mean gens",
			"cycles/generation", "mean run time @1MHz"},
	}
	n := min(cfg.runs(), 15)

	// Firmware GA on the MCU, seeds in parallel.
	fw, err := mapSeeds(ctx, cfg, n, func(i int) (mcu.GAResult, error) {
		return mcu.RunGA(cfg.BaseSeed+13000+uint64(i), 100000)
	})
	if err != nil {
		return Table{}, err
	}
	var gens, cpg []float64
	conv := 0
	for _, res := range fw {
		if !res.Converged {
			continue
		}
		conv++
		gens = append(gens, float64(res.Generations))
		if res.Generations > 0 {
			cpg = append(cpg, float64(res.Cycles)/float64(res.Generations))
		}
	}
	gs, cs := stats.Summarize(gens), stats.Summarize(cpg)
	mcuTime := time.Duration(gs.Mean * cs.Mean / gap.ClockHz * float64(time.Second))
	t.AddRow("processor board (firmware GA)", fmt.Sprintf("%d/%d", conv, n),
		fmt.Sprintf("%.0f", gs.Mean), fmt.Sprintf("%.0f", cs.Mean), fmtDuration(mcuTime))

	// Evolvable hardware (behavioural generations, measured circuit
	// cycle cost), seeds in parallel.
	hwRuns, err := mapSeeds(ctx, cfg, n, func(i int) (gap.Result, error) {
		p := gap.PaperParams(cfg.BaseSeed + 14000 + uint64(i))
		g, err := gap.New(p)
		if err != nil {
			return gap.Result{}, err
		}
		return g.RunCtx(ctx, nil)
	})
	if err != nil {
		return Table{}, err
	}
	gens = nil
	conv = 0
	for _, r := range hwRuns {
		if !r.Converged {
			continue
		}
		conv++
		gens = append(gens, float64(r.Generations))
	}
	gs = stats.Summarize(gens)
	hw := gap.PaperTiming()
	hwTime := hw.RunDuration(int(gs.Mean + 0.5))
	t.AddRow("evolvable hardware (GAP circuit)", fmt.Sprintf("%d/%d", conv, n),
		fmt.Sprintf("%.0f", gs.Mean), fmt.Sprint(hw.CyclesPerGeneration()), fmtDuration(hwTime))

	ratio := cs.Mean / float64(hw.CyclesPerGeneration())
	t.Note("per generation the processor needs ~%.0fx the clock cycles of the dedicated logic: "+
		"the fitness module alone costs hundreds of instructions in software but settles combinationally "+
		"in hardware. This is the arithmetic behind the paper's decision to avoid processors.", ratio)
	return t, nil
}
