// Package exp implements the paper-reproduction experiments: one
// function per table, figure, or in-text claim of the evaluation (see
// the per-experiment index in DESIGN.md), shared by cmd/experiments
// and the root bench harness. Every function returns a Table whose
// rows are the regenerated results, with the paper's reported value
// alongside where one exists.
package exp

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row, stringifying the cells.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a free-form note line.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
