package exp

import (
	"context"
	"fmt"
	"time"

	"leonardo/internal/engine"
	"leonardo/internal/evolve"
	"leonardo/internal/fitness"
	"leonardo/internal/fpga"
	"leonardo/internal/gait"
	"leonardo/internal/gap"
	"leonardo/internal/gapcirc"
	"leonardo/internal/genome"
	"leonardo/internal/robot"
	"leonardo/internal/stats"
)

// Config scales experiment effort. Defaults are chosen so the full
// suite finishes in minutes; the benches use smaller run counts.
type Config struct {
	// Runs is the number of seeded evolution runs per data point.
	Runs int
	// BaseSeed offsets all seeds for independence between experiments.
	BaseSeed uint64
	// Workers bounds the number of concurrent seeded runs per sweep
	// (<= 0 means runtime.GOMAXPROCS(0)).
	Workers int
}

// DefaultConfig is the full-report effort level.
func DefaultConfig() Config { return Config{Runs: 200, BaseSeed: 1} }

// QuickConfig is a fast smoke-level configuration.
func QuickConfig() Config { return Config{Runs: 20, BaseSeed: 1} }

func (c Config) runs() int {
	if c.Runs <= 0 {
		return 20
	}
	return c.Runs
}

// runPaper executes one behavioural GAP run at the paper's parameters,
// stopping early (with the context's error) if ctx ends mid-run.
func runPaper(ctx context.Context, seed uint64) (gap.Result, error) {
	p := gap.PaperParams(seed)
	g, err := gap.New(p)
	if err != nil {
		return gap.Result{}, err
	}
	return g.RunCtx(ctx, nil)
}

// generationSample collects generations-to-convergence over n seeds,
// running the seeds in parallel.
func generationSample(ctx context.Context, cfg Config, n int) ([]float64, error) {
	results, err := mapSeeds(ctx, cfg, n, func(i int) (gap.Result, error) {
		return runPaper(ctx, cfg.BaseSeed+uint64(i))
	})
	if err != nil {
		return nil, err
	}
	out := make([]float64, 0, n)
	for _, r := range results {
		if r.Converged {
			out = append(out, float64(r.Generations))
		}
	}
	return out, nil
}

// E1Parameters reproduces the §3.3 parameter list and verifies the
// realized operator rates against the configured thresholds.
func E1Parameters(ctx context.Context, cfg Config) (Table, error) {
	t := Table{
		ID:     "E1",
		Title:  "GAP parameters (paper §3.3) and realized operator rates",
		Header: []string{"parameter", "paper", "ours", "realized"},
	}
	p := gap.PaperParams(cfg.BaseSeed)
	p.MaxGenerations = 300
	p.Objective = unreachableObjective{}
	g, err := gap.New(p)
	if err != nil {
		return Table{}, err
	}
	if _, err := g.RunCtx(ctx, nil); err != nil {
		return Table{}, err
	}
	ops := g.Ops()
	keep := float64(ops.KeptBetter) / float64(ops.Tournaments)
	xov := float64(ops.Crossed) / float64(ops.Pairs)
	mutPerGen := float64(ops.Mutations) / 300

	t.AddRow("population size", "32", fmt.Sprint(p.PopulationSize), "-")
	t.AddRow("genome size (bits)", "36", fmt.Sprint(p.Layout.Bits()), "-")
	t.AddRow("selection threshold", "0.8", fmt.Sprintf("%.2f", p.SelectionThreshold),
		fmt.Sprintf("%.3f (kept fitter)", keep))
	t.AddRow("crossover threshold", "0.7", fmt.Sprintf("%.2f", p.CrossoverThreshold),
		fmt.Sprintf("%.3f (pairs crossed)", xov))
	t.AddRow("mutations/generation", "15 (of 1152 bits)", fmt.Sprint(p.MutationsPerGeneration),
		fmt.Sprintf("%.1f", mutPerGen))
	t.AddRow("clock frequency", "1 MHz", "1 MHz (cycle model)", "-")
	t.Note("thresholds are realized as 8-bit comparators: 0.8 -> 205/256 = %.4f, 0.7 -> 179/256 = %.4f",
		205.0/256, 179.0/256)
	return t, nil
}

type unreachableObjective struct{}

func (unreachableObjective) ScoreExtended(x genome.Extended) int {
	return fitness.New().ScoreExtended(x)
}
func (unreachableObjective) Max() int { return fitness.New().Max() + 1 }

// E2Generations reproduces "To evolve the maximum fitness it needs an
// average of about 2000 generations".
func E2Generations(ctx context.Context, cfg Config) (Table, error) {
	t := Table{
		ID:     "E2",
		Title:  "Generations to reach maximum fitness",
		Header: []string{"quantity", "paper", "measured"},
	}
	sample, err := generationSample(ctx, cfg, cfg.runs())
	if err != nil {
		return Table{}, err
	}
	s := stats.Summarize(sample)
	t.AddRow("runs converged", "-", fmt.Sprintf("%d/%d", s.N, cfg.runs()))
	t.AddRow("mean generations", "~2000", fmt.Sprintf("%.0f (95%% CI [%.0f, %.0f])", s.Mean, s.CI95Lo, s.CI95Hi))
	t.AddRow("median generations", "-", fmt.Sprintf("%.0f", s.Median))
	t.AddRow("p10 / p90", "-", fmt.Sprintf("%.0f / %.0f", s.P10, s.P90))
	t.AddRow("min / max", "-", fmt.Sprintf("%.0f / %.0f", s.Min, s.Max))
	t.Note("our mean is well below the paper's ~2000: the paper's exact rule weighting is unpublished; " +
		"with our equal-weight scoring the max-fitness family has 86436 members (1.3e-6 of the space) " +
		"and the GAP finds one in O(10^2) generations. The qualitative claim (O(10^2..10^3) generations, " +
		"far below exhaustive search) holds; see E3.")
	return t, nil
}

// E3Time reproduces "the average time needed is only about 10 minutes"
// versus "about 19 hours" for exhaustive search at 1 MHz.
func E3Time(ctx context.Context, cfg Config) (Table, error) {
	t := Table{
		ID:     "E3",
		Title:  "Evolution time at 1 MHz vs exhaustive search",
		Header: []string{"quantity", "paper", "measured/modelled"},
	}
	sample, err := generationSample(ctx, cfg, cfg.runs())
	if err != nil {
		return Table{}, err
	}
	s := stats.Summarize(sample)
	timing := gap.PaperTiming()
	meanGens := int(s.Mean + 0.5)
	gaTime := timing.RunDuration(meanGens)
	exh := gap.ExhaustiveDuration(genome.Bits)

	t.AddRow("cycles/generation", fmt.Sprintf("~%d (implied)", gap.PaperCyclesPerGeneration()),
		fmt.Sprintf("%d (gate-level measurement)", timing.CyclesPerGeneration()))
	t.AddRow("mean generations", "~2000", fmt.Sprint(meanGens))
	t.AddRow("GA time @1MHz", "~10 min", fmtDuration(gaTime))
	t.AddRow("exhaustive 2^36 @1MHz", "~19 h", fmtDuration(exh))
	t.AddRow("speedup", "~114x", fmt.Sprintf("%.0fx", timing.Speedup(meanGens, genome.Bits)))
	paperStyle := time.Duration(uint64(meanGens)*gap.PaperCyclesPerGeneration()) * time.Second / gap.ClockHz
	t.AddRow("GA time at paper's 300k cyc/gen", "~10 min",
		fmtDuration(paperStyle))
	t.Note("our word-parallel datapath needs ~%d cycles/generation where the paper's arithmetic implies ~300k; "+
		"the winner and the orders-of-magnitude gap to exhaustive search are preserved under either cycle model.",
		timing.CyclesPerGeneration())
	return t, nil
}

func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%.1f h", d.Hours())
	case d >= time.Minute:
		return fmt.Sprintf("%.1f min", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.2f s", d.Seconds())
	default:
		return fmt.Sprintf("%.0f ms", float64(d)/float64(time.Millisecond))
	}
}

// E4Resources reproduces "The complete system ... uses 96 percent of
// the available CLBs, i.e. 1244 CLBs".
func E4Resources(ctx context.Context, cfg Config) (Table, error) {
	t := Table{
		ID:     "E4",
		Title:  "XC4036EX resource usage of the complete system",
		Header: []string{"variant", "LUTs", "FFs", "RAM bits", "CLBs", "utilization", "fits"},
	}
	for _, v := range []struct {
		name string
		opts gapcirc.BuildOpts
	}{
		{"CLB-RAM population storage", gapcirc.BuildOpts{}},
		{"register-file population storage", gapcirc.BuildOpts{RegisterFile: true}},
	} {
		sys, err := gapcirc.BuildSystem(gap.PaperParams(cfg.BaseSeed), v.opts, 0)
		if err != nil {
			return Table{}, err
		}
		r := fpga.Map(sys.Core.Circuit, fpga.XC4036EX)
		t.AddRow(v.name, r.LUTs, r.FFs, r.RAMBits, r.TotalCLBs,
			fmt.Sprintf("%.0f%%", 100*r.Utilization()), r.Fits)
	}
	t.AddRow("paper (synthesized VHDL)", "-", "-", "-", 1244, "96%", true)
	t.Note("the paper's figure sits inside the bracket formed by our idealized CLB-RAM mapping " +
		"(lower bound: perfect packing, free routing) and the register-file variant (upper bound); " +
		"the qualitative claim — the whole evolvable system fits one XC4036EX-class device — is reproduced.")
	return t, nil
}

// E5WalkQuality reproduces "the walking behavior found with the
// maximum fitness respecting all these rules is nonetheless good":
// evolved champions must actually walk in the kinematic simulator.
func E5WalkQuality(ctx context.Context, cfg Config) (Table, error) {
	t := Table{
		ID:     "E5",
		Title:  "Walk quality of evolved maximum-fitness gaits (5 cycles, kinematic simulator)",
		Header: []string{"gait", "distance (mm)", "speed (mm/s)", "stumbles", "slip (mm)", "margin (mm)"},
	}
	trial := robot.Trial{Cycles: 5}
	tm := robot.WalkGenome(gait.Tripod(), trial)
	t.AddRow("tripod (best known)", fmt.Sprintf("%.0f", tm.DistanceMM),
		fmt.Sprintf("%.1f", tm.SpeedMMPerSec()), tm.Stumbles,
		fmt.Sprintf("%.0f", tm.SlipMM), fmt.Sprintf("%.1f", tm.MeanMargin))

	n := min(cfg.runs(), 50)
	type outcome struct {
		ok bool
		m  robot.Metrics
	}
	outs, err := mapSeeds(ctx, cfg, n, func(i int) (outcome, error) {
		r, err := runPaper(ctx, cfg.BaseSeed+1000+uint64(i))
		if err != nil {
			return outcome{}, err
		}
		if !r.Converged {
			return outcome{}, nil
		}
		return outcome{ok: true, m: robot.Walk(r.Best, trial)}, nil
	})
	if err != nil {
		return Table{}, err
	}
	var dist, falls, margins []float64
	forward := 0
	for _, o := range outs {
		if !o.ok {
			continue
		}
		dist = append(dist, o.m.DistanceMM)
		falls = append(falls, float64(o.m.Stumbles))
		margins = append(margins, o.m.MeanMargin)
		if o.m.DistanceMM > 0 {
			forward++
		}
	}
	ds, fs, ms := stats.Summarize(dist), stats.Summarize(falls), stats.Summarize(margins)
	t.AddRow(fmt.Sprintf("evolved champions (n=%d)", ds.N),
		fmt.Sprintf("%.0f mean (min %.0f, max %.0f)", ds.Mean, ds.Min, ds.Max),
		"-", fmt.Sprintf("%.2f mean", fs.Mean), "-",
		fmt.Sprintf("%.1f mean", ms.Mean))
	t.Note("%d/%d champions walk forward; all satisfy the three rules exactly. "+
		"Rule fitness admits slower-than-tripod gaits (the paper: maximum fitness 'does not necessarily "+
		"correspond to the best walk known ... [but] is nonetheless good').", forward, ds.N)
	t.Note("stumbles are stability-margin violations in our quasi-static simulator: the paper's " +
		"equilibrium rule only forbids three raised legs on the SAME side, so 2+2 raised postures pass the " +
		"rule yet leave a 2-leg support; the body then settles onto its raised feet (15 mm clearance) and " +
		"keeps walking at StumbleEfficiency. The tripod-family subset of the max-fitness set is stumble-free.")
	return t, nil
}

// F3ClosedLoop exercises the Fig. 3 architecture end to end: as
// evolution proceeds, the best individual handed to the walking
// controller walks further.
func F3ClosedLoop(ctx context.Context, cfg Config) (Table, error) {
	t := Table{
		ID:     "F3",
		Title:  "Closed loop (Fig. 3): walking quality of the best individual vs generation",
		Header: []string{"generation", "best fitness", "distance (mm, 5 cycles)", "stumbles"},
	}
	p := gap.PaperParams(cfg.BaseSeed + 77)
	p.MaxGenerations = 100000
	g, err := gap.New(p)
	if err != nil {
		return Table{}, err
	}
	checkpoints := []int{0, 5, 10, 20, 50, 100, 200, 400, 800}
	for _, cp := range checkpoints {
		if err := engine.Steps(ctx, g, nil, cp-g.GenerationNumber()); err != nil {
			return Table{}, err
		}
		best, fit := g.Best()
		m := robot.Walk(best, robot.Trial{Cycles: 5})
		t.AddRow(g.GenerationNumber(), fmt.Sprintf("%d/%d", fit, fitness.New().Max()),
			fmt.Sprintf("%.0f", m.DistanceMM), m.Stumbles)
		if g.Converged() {
			break
		}
	}
	t.Note("the best individual is handed to the configurable walking controller after each checkpoint, " +
		"as the GAP does on chip (Fig. 3).")
	return t, nil
}

// F4Controller reproduces the Fig. 4 walking-controller breakdown:
// the micro-movement sequence and the PWM widths of the 12 channels.
func F4Controller(ctx context.Context, cfg Config) (Table, error) {
	t := Table{
		ID:     "F4",
		Title:  "Walking controller (Fig. 4): tripod gait phase table and servo pulses",
		Header: []string{"phase", "step", "move", "legs up", "pulse range (us)"},
	}
	ctl := controllerTrace()
	for _, row := range ctl {
		t.AddRow(row[0], row[1], row[2], row[3], row[4])
	}
	t.Note("12 servo channels (2 per leg); PWM frame 20 ms, pulse 1.0-2.0 ms at the 1 MHz clock.")
	return t, nil
}

func controllerTrace() [][]string {
	x := genome.FromGenome(gait.Tripod())
	ctlr := newTraceController(x)
	var out [][]string
	for phase := 0; phase < 6; phase++ {
		step, move, ups, lo, hi := ctlr(phase)
		out = append(out, []string{
			fmt.Sprint(phase), fmt.Sprint(step + 1), move, ups,
			fmt.Sprintf("%d-%d", lo, hi),
		})
	}
	return out
}

// A1RuleAblation evolves with subsets of the three rules and walks the
// champions: which rules are load-bearing for actual walking.
func A1RuleAblation(ctx context.Context, cfg Config) (Table, error) {
	t := Table{
		ID:     "A1",
		Title:  "Rule ablation: evolve with rule subsets, walk the champions",
		Header: []string{"rules", "max fit", "mean gens", "mean distance (mm)", "mean stumbles", "forward"},
	}
	n := min(cfg.runs(), 30)
	cases := []struct {
		name string
		w    fitness.Weights
	}{
		{"R1+R2+R3 (paper)", fitness.Weights{Equilibrium: 1, Symmetry: 1, Coherence: 1}},
		{"R1 equilibrium only", fitness.Weights{Equilibrium: 1}},
		{"R2 symmetry only", fitness.Weights{Symmetry: 1}},
		{"R3 coherence only", fitness.Weights{Coherence: 1}},
		{"R2+R3 (no equilibrium)", fitness.Weights{Symmetry: 1, Coherence: 1}},
		{"R1+R3 (no symmetry)", fitness.Weights{Equilibrium: 1, Coherence: 1}},
		{"R1+R2 (no coherence)", fitness.Weights{Equilibrium: 1, Symmetry: 1}},
	}
	for _, cs := range cases {
		ev := fitness.Evaluator{Layout: genome.PaperLayout, Weights: cs.w}
		type outcome struct {
			ok   bool
			gens float64
			m    robot.Metrics
		}
		outs, err := mapSeeds(ctx, cfg, n, func(i int) (outcome, error) {
			p := gap.PaperParams(cfg.BaseSeed + 2000 + uint64(i))
			p.Objective = ev
			g, err := gap.New(p)
			if err != nil {
				return outcome{}, err
			}
			r, err := g.RunCtx(ctx, nil)
			if err != nil {
				return outcome{}, err
			}
			if !r.Converged {
				return outcome{}, nil
			}
			return outcome{ok: true, gens: float64(r.Generations),
				m: robot.Walk(r.Best, robot.Trial{Cycles: 5})}, nil
		})
		if err != nil {
			return Table{}, err
		}
		var gens, dist, falls []float64
		forward := 0
		for _, o := range outs {
			if !o.ok {
				continue
			}
			gens = append(gens, o.gens)
			dist = append(dist, o.m.DistanceMM)
			falls = append(falls, float64(o.m.Stumbles))
			if o.m.DistanceMM > 0 {
				forward++
			}
		}
		gs, ds, fs := stats.Summarize(gens), stats.Summarize(dist), stats.Summarize(falls)
		t.AddRow(cs.name, ev.Max(), fmt.Sprintf("%.0f", gs.Mean),
			fmt.Sprintf("%.0f", ds.Mean), fmt.Sprintf("%.2f", fs.Mean),
			fmt.Sprintf("%d/%d", forward, ds.N))
	}
	t.Note("all three rules together are what make the evolved champions walk; single rules converge " +
		"quickly to gaits that go nowhere or fall.")
	return t, nil
}

// A2Baselines compares the hardware-constrained GAP against a textbook
// software GA, random search, a hill climber, and a budgeted
// exhaustive scan.
func A2Baselines(ctx context.Context, cfg Config) (Table, error) {
	t := Table{
		ID:     "A2",
		Title:  "Search baselines under an equal evaluation budget",
		Header: []string{"method", "success", "mean evals to hit", "notes"},
	}
	n := min(cfg.runs(), 30)
	const budget = 50000
	e := fitness.New()
	target := e.Max()
	f := e.Func()

	// All methods run their seeds in parallel.
	type hit struct {
		ok    bool
		evals float64
	}
	collect := func(hits []hit) (int, []float64) {
		count := 0
		var es []float64
		for _, h := range hits {
			if h.ok {
				count++
				es = append(es, h.evals)
			}
		}
		return count, es
	}

	gapRuns, err := mapSeeds(ctx, cfg, n, func(i int) (hit, error) {
		p := gap.PaperParams(cfg.BaseSeed + 3000 + uint64(i))
		p.MaxGenerations = (budget - 32) / 32
		g, err := gap.New(p)
		if err != nil {
			return hit{}, err
		}
		r, err := g.RunCtx(ctx, nil)
		if err != nil {
			return hit{}, err
		}
		return hit{ok: r.Converged, evals: float64(g.Ops().Evaluations)}, nil
	})
	if err != nil {
		return Table{}, err
	}
	gapHits, gapEvals := collect(gapRuns)
	t.AddRow("GAP (hardware operators)", rate(gapHits, n), meanOf(gapEvals), "tournament+1pt+15 flips, no elitism")

	swRuns, err := mapSeeds(ctx, cfg, n, func(i int) (hit, error) {
		c := evolve.DefaultConfig(int64(cfg.BaseSeed) + 4000 + int64(i))
		c.MaxEvaluations = budget
		r, err := evolve.RunCtx(ctx, f, target, c, nil)
		if err != nil {
			return hit{}, err
		}
		return hit{ok: r.Converged, evals: float64(r.Evaluations)}, nil
	})
	if err != nil {
		return Table{}, err
	}
	swHits, swEvals := collect(swRuns)
	t.AddRow("software GA (elitism, per-bit mutation)", rate(swHits, n), meanOf(swEvals), "textbook generational GA")

	rsRuns, err := mapSeeds(ctx, cfg, n, func(i int) (hit, error) {
		r := evolve.RandomSearch(f, target, budget, int64(cfg.BaseSeed)+5000+int64(i))
		return hit{ok: r.Converged, evals: float64(r.Evaluations)}, nil
	})
	if err != nil {
		return Table{}, err
	}
	hcRuns, err := mapSeeds(ctx, cfg, n, func(i int) (hit, error) {
		r := evolve.HillClimber(f, target, budget, int64(cfg.BaseSeed)+6000+int64(i))
		return hit{ok: r.Converged, evals: float64(r.Evaluations)}, nil
	})
	if err != nil {
		return Table{}, err
	}
	saRuns, err := mapSeeds(ctx, cfg, n, func(i int) (hit, error) {
		r := evolve.SimulatedAnnealing(f, target, budget,
			evolve.DefaultAnnealConfig(int64(cfg.BaseSeed)+6500+int64(i)))
		return hit{ok: r.Converged, evals: float64(r.Evaluations)}, nil
	})
	if err != nil {
		return Table{}, err
	}
	rsHits, rsEvals := collect(rsRuns)
	hcHits, hcEvals := collect(hcRuns)
	saHits, saEvals := collect(saRuns)
	t.AddRow("random search", rate(rsHits, n), meanOf(rsEvals), "uniform draws")
	t.AddRow("hill climber (restarts)", rate(hcHits, n), meanOf(hcEvals), "first-improvement bit flips")
	t.AddRow("simulated annealing", rate(saHits, n), meanOf(saEvals), "Metropolis bit flips, geometric cooling")

	ex := evolve.ExhaustiveSearch(f, target, budget)
	exNote := "did not hit in budget"
	if ex.Converged {
		exNote = fmt.Sprintf("hit at eval %d", ex.Evaluations)
	}
	t.AddRow("exhaustive scan (budgeted)", rate(boolToInt(ex.Converged), 1), "-", exNote)
	t.Note("budget %d evaluations per run, %d runs per method; full exhaustive search needs 2^36 ~ 6.9e10.", budget, n)
	return t, nil
}

// A3ParamSweep sweeps each GAP parameter around the paper's setting.
func A3ParamSweep(ctx context.Context, cfg Config) (Table, error) {
	t := Table{
		ID:     "A3",
		Title:  "Parameter sweeps around the paper's operating point (mean generations to max fitness)",
		Header: []string{"parameter", "value", "converged", "mean gens", "mean @paper point"},
	}
	n := min(cfg.runs(), 25)
	baseCfg := cfg
	baseCfg.Runs = n
	baseCfg.BaseSeed = cfg.BaseSeed + 7000
	baseSample, err := generationSample(ctx, baseCfg, n)
	if err != nil {
		return Table{}, err
	}
	base := stats.Summarize(baseSample)
	baseStr := fmt.Sprintf("%.0f", base.Mean)

	sweep := func(name string, value string, mod func(*gap.Params)) error {
		results, err := mapSeeds(ctx, cfg, n, func(i int) (gap.Result, error) {
			p := gap.PaperParams(cfg.BaseSeed + 8000 + uint64(i))
			p.MaxGenerations = 20000 // stagnating settings stop here
			mod(&p)
			g, err := gap.New(p)
			if err != nil {
				return gap.Result{}, err
			}
			return g.RunCtx(ctx, nil)
		})
		if err != nil {
			return err
		}
		var sample []float64
		conv := 0
		for _, r := range results {
			if r.Converged {
				conv++
				sample = append(sample, float64(r.Generations))
			}
		}
		s := stats.Summarize(sample)
		t.AddRow(name, value, fmt.Sprintf("%d/%d", conv, n), fmt.Sprintf("%.0f", s.Mean), baseStr)
		return nil
	}
	for _, v := range []float64{0.5, 0.7, 0.9, 1.0} {
		vv := v
		if err := sweep("selection threshold", fmt.Sprintf("%.1f", v), func(p *gap.Params) { p.SelectionThreshold = vv }); err != nil {
			return Table{}, err
		}
	}
	for _, v := range []float64{0.0, 0.3, 1.0} {
		vv := v
		if err := sweep("crossover threshold", fmt.Sprintf("%.1f", v), func(p *gap.Params) { p.CrossoverThreshold = vv }); err != nil {
			return Table{}, err
		}
	}
	for _, v := range []int{0, 5, 30, 60} {
		vv := v
		if err := sweep("mutations/generation", fmt.Sprint(v), func(p *gap.Params) { p.MutationsPerGeneration = vv }); err != nil {
			return Table{}, err
		}
	}
	for _, v := range []int{8, 16, 64} {
		vv := v
		if err := sweep("population size", fmt.Sprint(v), func(p *gap.Params) { p.PopulationSize = vv }); err != nil {
			return Table{}, err
		}
	}
	return t, nil
}

// F5Pipeline reproduces the Fig. 5 GAP breakdown claims: the
// selection/crossover pipeline "decreases computation time by a factor
// of about two" for that stage.
func F5Pipeline(ctx context.Context, cfg Config) (Table, error) {
	t := Table{
		ID:     "F5",
		Title:  "GAP pipeline (Fig. 5): cycle accounting",
		Header: []string{"arrangement", "cycles/generation", "sel+xov stage", "note"},
	}
	seq := gap.PaperTiming()
	pipe := seq
	pipe.Pipelined = true
	t.AddRow("sequential (as gapcirc FSM)", seq.CyclesPerGeneration(), "-", "measured ground truth")
	t.AddRow("pipelined (paper's arrangement)", pipe.CyclesPerGeneration(), "-",
		fmt.Sprintf("saves %d cycles/gen", seq.CyclesPerGeneration()-pipe.CyclesPerGeneration()))

	// Measure the real circuit.
	core, err := gapcirc.Build(gap.PaperParams(cfg.BaseSeed))
	if err != nil {
		return Table{}, err
	}
	sim, err := core.Circuit.Compile()
	if err != nil {
		return Table{}, err
	}
	if _, err := core.RunGenerations(sim, 1, 0); err != nil {
		return Table{}, err
	}
	start := sim.Cycles()
	if _, err := core.RunGenerations(sim, 11, 0); err != nil {
		return Table{}, err
	}
	t.AddRow("gate-level measurement", fmt.Sprintf("%.0f", float64(sim.Cycles()-start)/10), "-",
		"10-generation average on the simulated FPGA")

	// The same measurement over a whole seed sweep at once: the 64-lane
	// simulator evolves every seed in one circuit pass per clock, so
	// the batch costs barely more wall time than the single run above.
	seeds := make([]uint64, 16)
	for i := range seeds {
		seeds[i] = cfg.BaseSeed + 15000 + uint64(i)
	}
	bcore, err := gapcirc.Build(gap.PaperParams(cfg.BaseSeed))
	if err != nil {
		return Table{}, err
	}
	bsim, err := bcore.Circuit.Compile()
	if err != nil {
		return Table{}, err
	}
	lanes, err := bcore.RunSeeds(bsim, seeds, 11, 0)
	if err != nil {
		return Table{}, err
	}
	var perGen float64
	for _, r := range lanes {
		perGen += float64(r.Cycles) / 11
	}
	perGen /= float64(len(lanes))
	t.AddRow(fmt.Sprintf("gate-level, %d seeds lane-packed", len(seeds)),
		fmt.Sprintf("%.0f", perGen), "-",
		fmt.Sprintf("11-generation average per seed (incl. init), one 64-lane simulator, %d clocks total", bsim.Cycles()))
	return t, nil
}

// X1BigGenome runs the paper's future-work scenario: bigger genomes
// (4 walk steps, 72 bits).
func X1BigGenome(ctx context.Context, cfg Config) (Table, error) {
	t := Table{
		ID:     "X1",
		Title:  "Future work: 72-bit (4-step) genomes",
		Header: []string{"quantity", "36-bit (paper)", "72-bit (future work)"},
	}
	n := min(cfg.runs(), 20)
	baseCfg := cfg
	baseCfg.Runs = n
	baseCfg.BaseSeed = cfg.BaseSeed + 9000
	baseSample, err := generationSample(ctx, baseCfg, n)
	if err != nil {
		return Table{}, err
	}
	base := stats.Summarize(baseSample)

	ly := genome.Layout{Steps: 4, Legs: 6}
	results, err := mapSeeds(ctx, cfg, n, func(i int) (gap.Result, error) {
		p := gap.PaperParams(cfg.BaseSeed + 9500 + uint64(i))
		p.Layout = ly
		p.MaxGenerations = 100000
		g, err := gap.New(p)
		if err != nil {
			return gap.Result{}, err
		}
		return g.RunCtx(ctx, nil)
	})
	if err != nil {
		return Table{}, err
	}
	var sample, dist []float64
	conv := 0
	for _, r := range results {
		if r.Converged {
			conv++
			sample = append(sample, float64(r.Generations))
			m := robot.Walk(r.Best, robot.Trial{Cycles: 5})
			dist = append(dist, m.DistanceMM)
		}
	}
	s := stats.Summarize(sample)
	t.AddRow("search space", "2^36", "2^72")
	t.AddRow("max fitness", fitness.New().Max(),
		fitness.Evaluator{Layout: ly, Weights: fitness.DefaultWeights}.Max())
	t.AddRow("converged", fmt.Sprintf("%d/%d", base.N, n), fmt.Sprintf("%d/%d", conv, n))
	t.AddRow("mean generations", fmt.Sprintf("%.0f", base.Mean), fmt.Sprintf("%.0f", s.Mean))
	t.AddRow("champion mean distance (mm)", "-", fmt.Sprintf("%.0f", stats.Summarize(dist).Mean))
	t.Note("the GAP generalizes unchanged to the bigger genome; generations grow sub-exponentially " +
		"because the rule fitness stays decomposable.")
	return t, nil
}

// Experiment is one named experiment of the suite.
type Experiment func(context.Context, Config) (Table, error)

// All runs every experiment in index order, stopping at the first
// error (including context cancellation); the tables completed so far
// are returned alongside the error.
func All(ctx context.Context, cfg Config) ([]Table, error) {
	experiments := []Experiment{
		E1Parameters,
		E2Generations,
		E3Time,
		E4Resources,
		E5WalkQuality,
		F3ClosedLoop,
		F4Controller,
		F5Pipeline,
		A1RuleAblation,
		A2Baselines,
		A3ParamSweep,
		A4DistanceFitness,
		A5Processor,
		A6FaultRecovery,
		X1BigGenome,
	}
	out := make([]Table, 0, len(experiments))
	for _, f := range experiments {
		t, err := f(ctx, cfg)
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
	return out, nil
}

func rate(hits, n int) string {
	return fmt.Sprintf("%d/%d", hits, n)
}

func meanOf(xs []float64) string {
	if len(xs) == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", stats.Summarize(xs).Mean)
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
