package exp

import (
	"context"
	"errors"
	"strconv"
	"strings"
	"testing"
)

var testCfg = Config{Runs: 6, BaseSeed: 1}

// runExp executes one experiment under a background context and fails
// the test on error.
func runExp(t *testing.T, f Experiment, cfg Config) Table {
	t.Helper()
	tb, err := f(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestTableRendering(t *testing.T) {
	tb := Table{ID: "T", Title: "demo", Header: []string{"a", "bb"}}
	tb.AddRow("x", 1)
	tb.AddRow("longer", 2.5)
	tb.Note("hello %d", 7)
	s := tb.String()
	for _, want := range []string{"== T: demo ==", "longer", "2.50", "note: hello 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
}

func TestE1Parameters(t *testing.T) {
	tb := runExp(t, E1Parameters, testCfg)
	if len(tb.Rows) != 6 {
		t.Fatalf("E1 rows = %d", len(tb.Rows))
	}
	// Realized selection rate must be near 0.8.
	found := false
	for _, row := range tb.Rows {
		if row[0] == "selection threshold" {
			found = true
			if !strings.HasPrefix(row[3], "0.7") && !strings.HasPrefix(row[3], "0.8") {
				t.Errorf("realized selection rate suspicious: %q", row[3])
			}
		}
	}
	if !found {
		t.Fatal("selection threshold row missing")
	}
}

func TestE2Generations(t *testing.T) {
	tb := runExp(t, E2Generations, testCfg)
	if got := cell(t, tb, "runs converged", 2); got != "6/6" {
		t.Fatalf("converged = %q", got)
	}
	mean := cell(t, tb, "mean generations", 2)
	v, err := strconv.Atoi(strings.Fields(mean)[0])
	if err != nil || v < 5 || v > 10000 {
		t.Fatalf("mean generations = %q", mean)
	}
}

func TestE3Time(t *testing.T) {
	tb := runExp(t, E3Time, testCfg)
	if got := cell(t, tb, "exhaustive 2^36 @1MHz", 2); !strings.Contains(got, "h") {
		t.Fatalf("exhaustive duration = %q", got)
	}
	sp := cell(t, tb, "speedup", 2)
	v, err := strconv.Atoi(strings.TrimSuffix(sp, "x"))
	if err != nil || v < 100 {
		t.Fatalf("speedup = %q, want >= 100x", sp)
	}
}

func TestE4Resources(t *testing.T) {
	tb := runExp(t, E4Resources, testCfg)
	if len(tb.Rows) != 3 {
		t.Fatalf("E4 rows = %d", len(tb.Rows))
	}
	// RAM variant fits; register variant exceeds; paper in between.
	ramCLBs := atoiCell(t, tb.Rows[0][4])
	regCLBs := atoiCell(t, tb.Rows[1][4])
	if !(ramCLBs < 1244 && 1244 < regCLBs) {
		t.Fatalf("paper's 1244 CLBs not bracketed: ram %d, reg %d", ramCLBs, regCLBs)
	}
	if tb.Rows[0][6] != "true" {
		t.Fatal("RAM variant should fit")
	}
}

func TestE5WalkQuality(t *testing.T) {
	tb := runExp(t, E5WalkQuality, testCfg)
	if len(tb.Rows) != 2 {
		t.Fatalf("E5 rows = %d", len(tb.Rows))
	}
	// Tripod row sanity: positive distance, zero falls.
	if atoiCell(t, tb.Rows[0][3]) != 0 {
		t.Fatal("tripod fell")
	}
	if atoiCell(t, tb.Rows[0][1]) <= 0 {
		t.Fatal("tripod distance not positive")
	}
}

func TestF3ClosedLoop(t *testing.T) {
	tb := runExp(t, F3ClosedLoop, testCfg)
	if len(tb.Rows) < 2 {
		t.Fatalf("F3 rows = %d", len(tb.Rows))
	}
	// Final row must be at max fitness if converged (fitness a/b with
	// a<=b); the last checkpoint's fitness must be >= the first's.
	first := fitOf(t, tb.Rows[0][1])
	last := fitOf(t, tb.Rows[len(tb.Rows)-1][1])
	if last < first {
		t.Fatalf("best fitness regressed across checkpoints: %d -> %d", first, last)
	}
}

func TestF4Controller(t *testing.T) {
	tb := runExp(t, F4Controller, testCfg)
	if len(tb.Rows) != 6 {
		t.Fatalf("F4 rows = %d", len(tb.Rows))
	}
	moves := []string{"V1", "H", "V2", "V1", "H", "V2"}
	for i, row := range tb.Rows {
		if row[2] != moves[i] {
			t.Fatalf("phase %d move = %q", i, row[2])
		}
	}
}

func TestF5Pipeline(t *testing.T) {
	tb := runExp(t, F5Pipeline, testCfg)
	if len(tb.Rows) != 4 {
		t.Fatalf("F5 rows = %d", len(tb.Rows))
	}
	seq := atoiCell(t, tb.Rows[0][1])
	pipe := atoiCell(t, tb.Rows[1][1])
	meas := atoiCell(t, strings.Fields(tb.Rows[2][1])[0])
	if pipe >= seq {
		t.Fatal("pipeline does not save cycles")
	}
	if meas < seq*3/4 || meas > seq*5/4 {
		t.Fatalf("measured %d vs modelled %d", meas, seq)
	}
	// The lane-packed sweep includes initialisation, so its average sits
	// a bit above the steady-state figure but in the same regime.
	batch := atoiCell(t, strings.Fields(tb.Rows[3][1])[0])
	if batch < seq*3/4 || batch > seq*2 {
		t.Fatalf("lane-packed measured %d vs modelled %d", batch, seq)
	}
}

func TestA1RuleAblation(t *testing.T) {
	tb := runExp(t, A1RuleAblation, Config{Runs: 4, BaseSeed: 1})
	if len(tb.Rows) != 7 {
		t.Fatalf("A1 rows = %d", len(tb.Rows))
	}
	if tb.Rows[0][0] != "R1+R2+R3 (paper)" {
		t.Fatal("first row must be the paper rule set")
	}
}

func TestA2Baselines(t *testing.T) {
	tb := runExp(t, A2Baselines, Config{Runs: 4, BaseSeed: 1})
	if len(tb.Rows) != 6 {
		t.Fatalf("A2 rows = %d", len(tb.Rows))
	}
}

func TestX1BigGenome(t *testing.T) {
	tb := runExp(t, X1BigGenome, Config{Runs: 3, BaseSeed: 1})
	if got := cell(t, tb, "search space", 2); got != "2^72" {
		t.Fatalf("search space = %q", got)
	}
}

func cell(t *testing.T, tb Table, rowName string, col int) string {
	t.Helper()
	for _, row := range tb.Rows {
		if row[0] == rowName {
			return row[col]
		}
	}
	t.Fatalf("row %q not found in %s", rowName, tb.ID)
	return ""
}

func atoiCell(t *testing.T, s string) int {
	t.Helper()
	v, err := strconv.Atoi(strings.Fields(s)[0])
	if err != nil {
		t.Fatalf("cell %q not an int", s)
	}
	return v
}

func fitOf(t *testing.T, s string) int {
	t.Helper()
	parts := strings.Split(s, "/")
	v, err := strconv.Atoi(parts[0])
	if err != nil {
		t.Fatalf("fitness cell %q", s)
	}
	return v
}

func TestA3ParamSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("parameter sweep is slow")
	}
	tb := runExp(t, A3ParamSweep, Config{Runs: 2, BaseSeed: 1})
	if len(tb.Rows) != 14 {
		t.Fatalf("A3 rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[0] == "" || row[2] == "" {
			t.Fatalf("malformed row %v", row)
		}
	}
}

func TestA4DistanceFitness(t *testing.T) {
	tb := runExp(t, A4DistanceFitness, Config{Runs: 2, BaseSeed: 1})
	if len(tb.Rows) != 2 {
		t.Fatalf("A4 rows = %d", len(tb.Rows))
	}
	if !strings.Contains(tb.Rows[0][0], "logic rules") {
		t.Fatal("first row must be the paper's fitness")
	}
	// The on-robot row's time must dwarf the rule row's.
	if !strings.Contains(tb.Notes[0], "robot time") {
		t.Fatal("missing robot-time note")
	}
}

func TestA5Processor(t *testing.T) {
	tb := runExp(t, A5Processor, Config{Runs: 3, BaseSeed: 1})
	if len(tb.Rows) != 2 {
		t.Fatalf("A5 rows = %d", len(tb.Rows))
	}
	mcuCyc := atoiCell(t, tb.Rows[0][3])
	hwCyc := atoiCell(t, tb.Rows[1][3])
	if mcuCyc <= hwCyc*10 {
		t.Fatalf("processor cycles/gen %d not clearly above hardware %d", mcuCyc, hwCyc)
	}
}

func TestA6FaultRecovery(t *testing.T) {
	tb := runExp(t, A6FaultRecovery, Config{Runs: 2, BaseSeed: 1})
	if len(tb.Rows) != 4 {
		t.Fatalf("A6 rows = %d", len(tb.Rows))
	}
	healthy := atoiCell(t, tb.Rows[0][1])
	damaged := atoiCell(t, tb.Rows[1][1])
	warm := atoiCell(t, tb.Rows[3][1])
	if damaged >= healthy {
		t.Fatal("failure did not degrade the tripod")
	}
	if warm < damaged {
		t.Fatalf("warm start (%d) fell below the incumbent (%d)", warm, damaged)
	}
}

func TestMapSeedsOrderAndCoverage(t *testing.T) {
	ctx := context.Background()
	out, err := mapSeeds(ctx, testCfg, 50, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	empty, err := mapSeeds(ctx, testCfg, 0, func(int) (int, error) { return 1, nil })
	if err != nil || len(empty) != 0 {
		t.Fatalf("n=0 should return empty, got %v, %v", empty, err)
	}
}

func TestMapSeedsErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	_, err := mapSeeds(context.Background(), testCfg, 20, func(i int) (int, error) {
		if i == 7 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestMapSeedsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := mapSeeds(ctx, Config{Workers: 2}, 100, func(i int) (int, error) { return i, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestAllStopsOnCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tables, err := All(ctx, Config{Runs: 2, BaseSeed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(tables) != 0 {
		t.Fatalf("cancelled before the first experiment, got %d tables", len(tables))
	}
}
