package exp

import (
	"context"
	"fmt"

	"leonardo/internal/gait"
	"leonardo/internal/gap"
	"leonardo/internal/genome"
	"leonardo/internal/robot"
	"leonardo/internal/stats"
)

// damagedObjective scores genomes by distance walked on a robot with a
// failed leg — the fault-recovery scenario the evolvable-hardware
// literature motivates (the robot re-learns to walk around its own
// damage).
type damagedObjective struct {
	failedLeg int
	target    int
}

func (d damagedObjective) ScoreExtended(x genome.Extended) int {
	m := robot.Walk(x, robot.Trial{Cycles: trialCycles, FailedLeg: d.failedLeg})
	score := m.DistanceMM - float64(m.Stumbles)*2*robot.StrideHalf
	if score < 0 {
		return 0
	}
	return int(score)
}
func (d damagedObjective) Max() int { return d.target }

// A6FaultRecovery injects a servo failure (one leg dead and dragging)
// and measures: how much the fixed tripod gait degrades, and how much
// of the loss on-line re-evolution recovers. This is the standing
// promise of evolvable hardware — "a circuit that ... can modify its
// functionality in order to find the right behavior" — applied to the
// robot's own faults.
func A6FaultRecovery(ctx context.Context, cfg Config) (Table, error) {
	t := Table{
		ID:     "A6",
		Title:  "Fault recovery: leg failure, fixed gait vs re-evolved gait (distance, 5 cycles)",
		Header: []string{"scenario", "distance (mm)", "vs healthy tripod", "stumbles"},
	}
	const failedLeg = 2 // L2 (middle left), 1-based
	healthy := robot.WalkGenome(gait.Tripod(), robot.Trial{Cycles: 5})
	damaged := robot.WalkGenome(gait.Tripod(), robot.Trial{Cycles: 5, FailedLeg: failedLeg})
	pct := func(d float64) string { return fmt.Sprintf("%.0f%%", 100*d/healthy.DistanceMM) }
	t.AddRow("healthy robot, tripod", fmt.Sprintf("%.0f", healthy.DistanceMM), "100%", healthy.Stumbles)
	t.AddRow("L2 servos dead, tripod unchanged", fmt.Sprintf("%.0f", damaged.DistanceMM),
		pct(damaged.DistanceMM), damaged.Stumbles)

	// Re-evolve on the damaged machine: from scratch, and warm-started
	// from the incumbent gait (the on-line scenario: the population
	// still holds the pre-fault champion).
	n := min(cfg.runs(), 6)
	obj := damagedObjective{failedLeg: failedLeg, target: int(healthy.DistanceMM)}
	evolve := func(warm bool, gens int) (stats.Summary, error) {
		dist, err := mapSeeds(ctx, cfg, n, func(i int) (float64, error) {
			p := gap.PaperParams(cfg.BaseSeed + 15000 + uint64(i))
			p.Objective = obj
			p.MaxGenerations = gens
			if warm {
				p.InitialPopulation = []genome.Extended{genome.FromGenome(gait.Tripod())}
			}
			g, err := gap.New(p)
			if err != nil {
				return 0, err
			}
			r, err := g.RunCtx(ctx, nil)
			if err != nil {
				return 0, err
			}
			return robot.Walk(r.Best, robot.Trial{Cycles: 5, FailedLeg: failedLeg}).DistanceMM, nil
		})
		if err != nil {
			return stats.Summary{}, err
		}
		return stats.Summarize(dist), nil
	}
	scratch, err := evolve(false, 2000)
	if err != nil {
		return Table{}, err
	}
	warm, err := evolve(true, 400)
	if err != nil {
		return Table{}, err
	}
	t.AddRow(fmt.Sprintf("L2 dead, re-evolved from scratch (n=%d, 2000 gens)", n),
		fmt.Sprintf("%.0f mean (max %.0f)", scratch.Mean, scratch.Max), pct(scratch.Mean), "-")
	t.AddRow(fmt.Sprintf("L2 dead, warm start from incumbent (n=%d, 400 gens)", n),
		fmt.Sprintf("%.0f mean (max %.0f)", warm.Mean, warm.Max), pct(warm.Mean), "-")
	t.Note("the damaged tripod is close to the encoding's optimum for this fault (the dead leg drags " +
		"regardless), so 'recovery' means matching it: from-scratch evolution approaches it blind, and " +
		"the warm-started population never falls below the incumbent — the on-line fault story of " +
		"evolvable hardware.")
	return t, nil
}
