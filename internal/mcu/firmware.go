package mcu

import (
	"fmt"

	"leonardo/internal/carng"
	"leonardo/internal/genome"
)

// Memory map of the GA firmware (word addresses).
const (
	MemBasis   = 0   // 32 words: basis population
	MemInter   = 32  // 32 words: intermediate population
	MemFitness = 64  // 32 words: fitness of the basis population
	MemBest    = 96  // best genome ever
	MemBestFit = 97  // its fitness
	MemGen     = 99  // generation counter
	MemMaxGen  = 100 // generation cap (set by host)
	MemWords   = 128
)

// fitnessAsm is the three-rule fitness as a leaf subroutine:
// input r1 = genome, output r2 = score, clobbers r3-r7, returns via
// r15. It is the software twin of internal/fitness and of the
// combinational module in internal/gapcirc; the tests check all three
// against each other.
const fitnessAsm = `
; --- fitness(r1 genome) -> r2, clobbers r3-r7 ---
fitness:
        LI   r2, 0
; rule 3 - coherence: 12 leg-steps, RaiseFirst == Forward
        LI   r3, 0
f_coh:  ADD  r4, r3, r3
        ADD  r4, r4, r3          ; bit base = 3*i
        SHR  r5, r1, r4
        SHRI r6, r5, 1
        XOR  r5, r5, r6
        ANDI r5, r5, 1
        XORI r5, r5, 1           ; 1 if coherent
        ADD  r2, r2, r5
        ADDI r3, r3, 1
        LI   r6, 12
        BLT  r3, r6, f_coh
; rule 2 - symmetry: 6 legs, Forward bits of the two steps differ
        LI   r3, 0
f_sym:  ADD  r4, r3, r3
        ADD  r4, r4, r3
        ADDI r4, r4, 1           ; bit 3l+1
        SHR  r5, r1, r4
        SHRI r6, r5, 18          ; bit 3l+19
        XOR  r5, r5, r6
        ANDI r5, r5, 1
        ADD  r2, r2, r5
        ADDI r3, r3, 1
        LI   r6, 6
        BLT  r3, r6, f_sym
; rule 1 - equilibrium: 8 (step, phase, side) combos, NOT all-3-up
        LI   r3, 0
f_eq:   ANDI r4, r3, 1           ; step
        SHLI r5, r4, 4
        SHLI r6, r4, 1
        ADD  r4, r5, r6          ; 18*step
        SHRI r5, r3, 1
        ANDI r5, r5, 1
        SHLI r5, r5, 1           ; phase bit k in {0,2}
        ADD  r4, r4, r5
        SHRI r5, r3, 2
        ANDI r5, r5, 1
        SHLI r6, r5, 3
        ADD  r5, r6, r5          ; 9*side
        ADD  r4, r4, r5          ; base bit
        SHR  r5, r1, r4
        SHRI r6, r5, 3
        AND  r6, r6, r5
        SHRI r7, r5, 6
        AND  r6, r6, r7
        ANDI r6, r6, 1           ; all three raised
        XORI r6, r6, 1
        ADD  r2, r2, r6
        ADDI r3, r3, 1
        LI   r6, 8
        BLT  r3, r6, f_eq
        JR   r15
`

// gaAsm is the complete genetic algorithm as firmware: the same
// operators and parameters as the GAP (population 32, tournament
// selection with threshold 205/256, single-point crossover with
// threshold 179/256, 15 single-bit mutations per generation,
// best-individual register), written the way a processor-board
// implementation would be. Bank swapping is pointer-based (r13/r14).
const gaAsm = `
.equ MASK36  0xFFFFFFFFF
.equ POP     32
.equ PAIRS   16
.equ MUTS    15
.equ SELTHR  205
.equ XOVTHR  179
.equ MAXFIT  26
.equ FITARR  64

start:  LI   r13, 0              ; basis base
        LI   r14, 32             ; intermediate base
; initial random population
        LI   r8, 0
init:   RND  r4
        LI   r5, MASK36
        AND  r4, r4, r5
        ADD  r9, r13, r8
        ST   r9, r4, 0
        ADDI r8, r8, 1
        LI   r9, POP
        BLT  r8, r9, init
        JAL  eval

gen:    LD   r3, r0, 97          ; best fitness so far
        LI   r4, MAXFIT
        BGE  r3, r4, done
        LD   r3, r0, 99          ; generation counter
        LD   r4, r0, 100         ; cap
        BGE  r3, r4, done

; --- selection + crossover over 16 pairs ---
        LI   r8, 0
pair:   JAL  tourn
        ADD  r12, r10, r0        ; parent A
        JAL  tourn               ; parent B in r10
        ADD  r11, r10, r0
        RND  r3
        ANDI r3, r3, 255
        LI   r4, XOVTHR
        BGE  r3, r4, nocross
ptry:   RND  r3
        ANDI r3, r3, 63
        LI   r4, 35
        BGE  r3, r4, ptry
        ADDI r3, r3, 1           ; point in 1..35
        LI   r4, 1
        SHL  r4, r4, r3
        ADDI r4, r4, -1          ; low mask
        AND  r5, r12, r4         ; A low
        LI   r6, MASK36
        XOR  r7, r4, r6          ; high mask
        AND  r6, r11, r7
        OR   r5, r5, r6          ; child A
        AND  r6, r11, r4         ; B low
        AND  r7, r12, r7
        OR   r6, r6, r7          ; child B
        BEQ  r0, r0, store
nocross: ADD r5, r12, r0
        ADD  r6, r11, r0
store:  ADD  r9, r8, r8
        ADD  r9, r14, r9
        ST   r9, r5, 0
        ST   r9, r6, 1
        ADDI r8, r8, 1
        LI   r9, PAIRS
        BLT  r8, r9, pair

; --- 15 single-bit mutations over the intermediate population ---
        LI   r8, 0
mut:    RND  r3
        ANDI r3, r3, 31          ; individual
btry:   RND  r4
        ANDI r4, r4, 63
        LI   r5, 36
        BGE  r4, r5, btry        ; bit position
        LI   r5, 1
        SHL  r5, r5, r4
        ADD  r9, r14, r3
        LD   r6, r9, 0
        XOR  r6, r6, r5
        ST   r9, r6, 0
        ADDI r8, r8, 1
        LI   r9, MUTS
        BLT  r8, r9, mut

; --- swap population banks, count the generation, evaluate ---
        XOR  r13, r13, r14
        XOR  r14, r13, r14
        XOR  r13, r13, r14
        LD   r3, r0, 99
        ADDI r3, r3, 1
        ST   r0, r3, 99
        JAL  eval
        BEQ  r0, r0, gen

done:   HALT

; --- eval: fitness of the whole basis population + best register ---
eval:   ST   r0, r15, 101        ; save link
        LI   r8, 0
eloop:  ADD  r9, r13, r8
        LD   r1, r9, 0
        JAL  fitness
        LI   r9, FITARR
        ADD  r9, r9, r8
        ST   r9, r2, 0
        LD   r3, r0, 97
        BGE  r3, r2, enext
        ST   r0, r1, 96          ; new best genome
        ST   r0, r2, 97
enext:  ADDI r8, r8, 1
        LI   r9, POP
        BLT  r8, r9, eloop
        LD   r15, r0, 101
        JR   r15

; --- tournament selection -> r10 (clobbers r1-r7, r9) ---
tourn:  ST   r0, r15, 102
        RND  r3
        ANDI r3, r3, 31          ; candidate 1
        RND  r4
        ANDI r4, r4, 31          ; candidate 2
        LI   r5, FITARR
        ADD  r6, r5, r3
        LD   r6, r6, 0           ; fit 1
        ADD  r7, r5, r4
        LD   r7, r7, 0           ; fit 2
        BLT  r6, r7, tsecond
        ADD  r5, r3, r0          ; better = 1 (ties keep the first)
        ADD  r6, r4, r0          ; worse  = 2
        BEQ  r0, r0, tpick
tsecond: ADD r5, r4, r0
        ADD  r6, r3, r0
tpick:  RND  r7
        ANDI r7, r7, 255
        LI   r9, SELTHR
        BLT  r7, r9, tkeep
        ADD  r5, r6, r0          ; coin failed: take the worse
tkeep:  ADD  r9, r13, r5
        LD   r10, r9, 0
        LD   r15, r0, 102
        JR   r15
` + fitnessAsm

// GAProgram is the assembled firmware.
var GAProgram = MustAssemble(gaAsm)

// fitnessTestAsm wraps the fitness subroutine for standalone calls:
// genome in mem[0], score out to mem[1].
const fitnessTestAsm = `
        LD   r1, r0, 0
        JAL  fitness
        ST   r0, r2, 1
        HALT
` + fitnessAsm

// FitnessProgram is the assembled standalone fitness routine.
var FitnessProgram = MustAssemble(fitnessTestAsm)

// FitnessOf runs the firmware fitness routine on one genome and
// returns (score, cycles).
func FitnessOf(g genome.Genome) (int, uint64, error) {
	cpu := New(FitnessProgram, 8, nil)
	cpu.SetMem(0, uint64(g))
	if err := cpu.Run(); err != nil {
		return 0, 0, err
	}
	return int(cpu.Mem(1)), cpu.Cycles(), nil
}

// GAResult reports a firmware GA run.
type GAResult struct {
	Best        genome.Genome
	BestFitness int
	Generations int
	Cycles      uint64
	Converged   bool
}

// RunGA executes the firmware GA on the board (cellular-automaton RNG
// seeded as on the FPGA board) until convergence or the generation
// cap.
func RunGA(seed uint64, maxGenerations int) (GAResult, error) {
	cpu := New(GAProgram, MemWords, carng.NewDefault(seed))
	cpu.SetMem(MemMaxGen, uint64(maxGenerations))
	if err := cpu.Run(); err != nil {
		return GAResult{}, fmt.Errorf("mcu: firmware GA: %w", err)
	}
	res := GAResult{
		Best:        genome.Genome(cpu.Mem(MemBest)) & genome.Mask,
		BestFitness: int(cpu.Mem(MemBestFit)),
		Generations: int(cpu.Mem(MemGen)),
		Cycles:      cpu.Cycles(),
	}
	res.Converged = res.BestFitness >= 26
	return res, nil
}
