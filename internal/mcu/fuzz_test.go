package mcu

import (
	"strings"
	"testing"
)

// FuzzAssemble checks the assembler never panics on arbitrary source
// and that accepted programs execute (or fail) without panicking under
// a small cycle budget.
func FuzzAssemble(f *testing.F) {
	f.Add("ADD r1, r2, r3")
	f.Add("loop: ADDI r1, r1, 1\nBLT r1, r2, loop")
	f.Add(".equ X 5\nLI r1, X\nHALT")
	f.Add("garbage ; with comment")
	f.Add(strings.Repeat("NOP\n", 50))
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Assemble(src)
		if err != nil {
			return
		}
		cpu := New(prog, 32, &fixedRNG{vals: []uint64{1, 2, 3}})
		cpu.MaxCycles = 5000
		_ = cpu.Run() // errors allowed; panics are not
	})
}
