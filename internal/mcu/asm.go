package mcu

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates assembly text into a program. The syntax is one
// instruction per line:
//
//	label:  ADD  r1, r2, r3     ; comment
//	        ADDI r1, r1, 42
//	        LD   r4, r2, 8      ; rd, base, offset
//	        BEQ  r1, r0, done
//	        JAL  fitness
//	done:   HALT
//
// Comments start with ';' or '#'. Immediates accept decimal, 0x hex,
// 0b binary, and negative values. Branch/jump targets are labels or
// absolute instruction indices. Constants can be defined with
// ".equ NAME VALUE" and used wherever an immediate is expected.
func Assemble(src string) ([]Instr, error) {
	type pending struct {
		instr int
		label string
		line  int
	}
	var prog []Instr
	labels := map[string]int{}
	consts := map[string]int64{}
	var fixups []pending

	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Directives.
		if strings.HasPrefix(line, ".equ") {
			parts := strings.Fields(line)
			if len(parts) != 3 {
				return nil, fmt.Errorf("line %d: .equ NAME VALUE", ln+1)
			}
			v, err := parseImm(parts[2], consts)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", ln+1, err)
			}
			consts[parts[1]] = v
			continue
		}
		// Labels (possibly followed by an instruction).
		for {
			colon := strings.Index(line, ":")
			if colon < 0 || strings.ContainsAny(line[:colon], " \t,") {
				break
			}
			name := line[:colon]
			if _, dup := labels[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate label %q", ln+1, name)
			}
			labels[name] = len(prog)
			line = strings.TrimSpace(line[colon+1:])
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}

		fields := strings.Fields(line)
		mnemonic := strings.ToUpper(fields[0])
		rest := strings.TrimSpace(line[len(fields[0]):])
		args := splitArgs(rest)

		op, ok := mnemonics[mnemonic]
		if !ok {
			return nil, fmt.Errorf("line %d: unknown mnemonic %q", ln+1, fields[0])
		}
		in := Instr{Op: op}
		spec := formats[op]
		if len(args) != len(spec) {
			return nil, fmt.Errorf("line %d: %s takes %d operands, got %d", ln+1, mnemonic, len(spec), len(args))
		}
		for i, kind := range spec {
			arg := args[i]
			switch kind {
			case 'd', 's', 't':
				r, err := parseReg(arg)
				if err != nil {
					return nil, fmt.Errorf("line %d: %v", ln+1, err)
				}
				switch kind {
				case 'd':
					in.Rd = r
				case 's':
					in.Rs1 = r
				case 't':
					in.Rs2 = r
				}
			case 'i': // immediate
				v, err := parseImm(arg, consts)
				if err != nil {
					return nil, fmt.Errorf("line %d: %v", ln+1, err)
				}
				in.Imm = v
			case 'l': // label or absolute target
				if v, err := parseImm(arg, consts); err == nil {
					in.Imm = v
				} else {
					fixups = append(fixups, pending{instr: len(prog), label: arg, line: ln + 1})
				}
			}
		}
		prog = append(prog, in)
	}
	for _, f := range fixups {
		target, ok := labels[f.label]
		if !ok {
			return nil, fmt.Errorf("line %d: undefined label %q", f.line, f.label)
		}
		prog[f.instr].Imm = int64(target)
	}
	return prog, nil
}

// MustAssemble panics on assembly errors; for firmware embedded in the
// binary.
func MustAssemble(src string) []Instr {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

// mnemonics and operand formats: d=rd, s=rs1, t=rs2, i=immediate,
// l=branch/jump target.
var mnemonics = map[string]Op{
	"NOP": OpNop, "ADD": OpAdd, "SUB": OpSub, "AND": OpAnd, "OR": OpOr,
	"XOR": OpXor, "SHL": OpShl, "SHR": OpShr, "ADDI": OpAddi,
	"ANDI": OpAndi, "ORI": OpOri, "XORI": OpXori, "SHLI": OpShli,
	"SHRI": OpShri, "LI": OpLi, "LD": OpLd, "ST": OpSt, "BEQ": OpBeq,
	"BNE": OpBne, "BLT": OpBlt, "BGE": OpBge, "JAL": OpJal, "JR": OpJr,
	"RND": OpRnd, "HALT": OpHalt,
}

var formats = map[Op]string{
	OpNop: "", OpHalt: "",
	OpAdd: "dst", OpSub: "dst", OpAnd: "dst", OpOr: "dst", OpXor: "dst",
	OpShl: "dst", OpShr: "dst",
	OpAddi: "dsi", OpAndi: "dsi", OpOri: "dsi", OpXori: "dsi",
	OpShli: "dsi", OpShri: "dsi",
	OpLi: "di", OpLd: "dsi", OpSt: "sti",
	OpBeq: "stl", OpBne: "stl", OpBlt: "stl", OpBge: "stl",
	OpJal: "l", OpJr: "s", OpRnd: "d",
}

func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseReg(s string) (int, error) {
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return n, nil
}

func parseImm(s string, consts map[string]int64) (int64, error) {
	if v, ok := consts[s]; ok {
		return v, nil
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return v, nil
}
