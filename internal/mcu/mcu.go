// Package mcu models the paper's *other* control board: "a
// processor-based card ... derived from the Khepera robot hardware"
// (§2). The paper explicitly avoids it ("In our approach we want to
// avoid the use of processors"); this package exists to quantify that
// choice — experiment A5 runs the same genetic algorithm as firmware
// on a cycle-counted microcontroller and compares against the
// evolvable-hardware GAP at the same 1 MHz clock.
//
// The machine is a deliberately simple load/store CPU of the mid-90s
// class: sixteen 64-bit registers (r0 wired to zero), word-addressed
// memory, two-operand ALU with immediates, compare-and-branch, a link
// register for calls, and one peripheral — the board's random number
// generator, read with RND (the FPGA board's cellular automaton plays
// the same role). Cycle costs are typical for the era: 2 cycles per
// ALU op, 4 per memory access, 3 per taken branch.
package mcu

import (
	"fmt"
)

// Op is an instruction opcode.
type Op int

// The instruction set.
const (
	OpNop  Op = iota
	OpAdd     // rd = rs1 + rs2
	OpSub     // rd = rs1 - rs2
	OpAnd     // rd = rs1 & rs2
	OpOr      // rd = rs1 | rs2
	OpXor     // rd = rs1 ^ rs2
	OpShl     // rd = rs1 << (rs2 & 63)
	OpShr     // rd = rs1 >> (rs2 & 63) (logical)
	OpAddi    // rd = rs1 + imm
	OpAndi    // rd = rs1 & imm
	OpOri     // rd = rs1 | imm
	OpXori    // rd = rs1 ^ imm
	OpShli    // rd = rs1 << imm
	OpShri    // rd = rs1 >> imm (logical)
	OpLi      // rd = imm
	OpLd      // rd = mem[rs1 + imm]
	OpSt      // mem[rs1 + imm] = rs2
	OpBeq     // if rs1 == rs2 goto imm
	OpBne     // if rs1 != rs2 goto imm
	OpBlt     // if rs1 <  rs2 goto imm (unsigned)
	OpBge     // if rs1 >= rs2 goto imm (unsigned)
	OpJal     // link = pc+1; goto imm
	OpJr      // goto rs1
	OpRnd     // rd = next word from the board RNG
	OpHalt    // stop
)

var opNames = map[Op]string{
	OpNop: "NOP", OpAdd: "ADD", OpSub: "SUB", OpAnd: "AND", OpOr: "OR",
	OpXor: "XOR", OpShl: "SHL", OpShr: "SHR", OpAddi: "ADDI",
	OpAndi: "ANDI", OpOri: "ORI", OpXori: "XORI", OpShli: "SHLI",
	OpShri: "SHRI", OpLi: "LI", OpLd: "LD", OpSt: "ST", OpBeq: "BEQ",
	OpBne: "BNE", OpBlt: "BLT", OpBge: "BGE", OpJal: "JAL", OpJr: "JR",
	OpRnd: "RND", OpHalt: "HALT",
}

func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// cycles is the per-opcode cost model (taken branches add one).
var cycles = map[Op]uint64{
	OpNop: 1,
	OpAdd: 2, OpSub: 2, OpAnd: 2, OpOr: 2, OpXor: 2, OpShl: 2, OpShr: 2,
	OpAddi: 2, OpAndi: 2, OpOri: 2, OpXori: 2, OpShli: 2, OpShri: 2,
	OpLi: 2,
	OpLd: 4, OpSt: 4,
	OpBeq: 2, OpBne: 2, OpBlt: 2, OpBge: 2,
	OpJal: 3, OpJr: 3,
	OpRnd:  2,
	OpHalt: 1,
}

const takenBranchExtra = 1

// Instr is one decoded instruction. Rd/Rs1/Rs2 are register numbers;
// Imm is the immediate, memory offset, or branch/jump target
// (instruction index).
type Instr struct {
	Op           Op
	Rd, Rs1, Rs2 int
	Imm          int64
}

// LinkReg is the register JAL writes the return address into.
const LinkReg = 15

// NumRegs is the register-file size; register 0 reads as zero.
const NumRegs = 16

// RNG supplies the board's random words (the FPGA board uses the
// cellular automaton; carng.CA satisfies this).
type RNG interface {
	Word() uint64
}

// CPU is a running machine.
type CPU struct {
	prog   []Instr
	mem    []uint64
	reg    [NumRegs]uint64
	pc     int
	rng    RNG
	halted bool
	cycles uint64
	// MaxCycles guards against runaway programs (0 = 10^10).
	MaxCycles uint64
}

// New creates a machine with the given program and memory size (in
// words).
func New(prog []Instr, memWords int, rng RNG) *CPU {
	return &CPU{prog: prog, mem: make([]uint64, memWords), rng: rng}
}

// Reg returns a register value.
func (c *CPU) Reg(i int) uint64 { return c.reg[i] }

// SetReg writes a register (r0 stays zero).
func (c *CPU) SetReg(i int, v uint64) {
	if i != 0 {
		c.reg[i] = v
	}
}

// Mem returns a memory word.
func (c *CPU) Mem(addr int) uint64 { return c.mem[addr] }

// SetMem writes a memory word.
func (c *CPU) SetMem(addr int, v uint64) { c.mem[addr] = v }

// Cycles returns the consumed clock cycles.
func (c *CPU) Cycles() uint64 { return c.cycles }

// Halted reports whether the program has stopped.
func (c *CPU) Halted() bool { return c.halted }

// PC returns the current program counter.
func (c *CPU) PC() int { return c.pc }

// Step executes one instruction.
func (c *CPU) Step() error {
	if c.halted {
		return nil
	}
	if c.pc < 0 || c.pc >= len(c.prog) {
		return fmt.Errorf("mcu: pc %d out of program (len %d)", c.pc, len(c.prog))
	}
	in := c.prog[c.pc]
	c.cycles += cycles[in.Op]
	next := c.pc + 1
	r := func(i int) uint64 { return c.reg[i] }
	w := func(v uint64) {
		if in.Rd != 0 {
			c.reg[in.Rd] = v
		}
	}
	switch in.Op {
	case OpNop:
	case OpAdd:
		w(r(in.Rs1) + r(in.Rs2))
	case OpSub:
		w(r(in.Rs1) - r(in.Rs2))
	case OpAnd:
		w(r(in.Rs1) & r(in.Rs2))
	case OpOr:
		w(r(in.Rs1) | r(in.Rs2))
	case OpXor:
		w(r(in.Rs1) ^ r(in.Rs2))
	case OpShl:
		w(r(in.Rs1) << (r(in.Rs2) & 63))
	case OpShr:
		w(r(in.Rs1) >> (r(in.Rs2) & 63))
	case OpAddi:
		w(r(in.Rs1) + uint64(in.Imm))
	case OpAndi:
		w(r(in.Rs1) & uint64(in.Imm))
	case OpOri:
		w(r(in.Rs1) | uint64(in.Imm))
	case OpXori:
		w(r(in.Rs1) ^ uint64(in.Imm))
	case OpShli:
		w(r(in.Rs1) << (uint64(in.Imm) & 63))
	case OpShri:
		w(r(in.Rs1) >> (uint64(in.Imm) & 63))
	case OpLi:
		w(uint64(in.Imm))
	case OpLd:
		addr := int(int64(r(in.Rs1)) + in.Imm)
		if addr < 0 || addr >= len(c.mem) {
			return fmt.Errorf("mcu: load from %d out of memory (%d words) at pc %d", addr, len(c.mem), c.pc)
		}
		w(c.mem[addr])
	case OpSt:
		addr := int(int64(r(in.Rs1)) + in.Imm)
		if addr < 0 || addr >= len(c.mem) {
			return fmt.Errorf("mcu: store to %d out of memory (%d words) at pc %d", addr, len(c.mem), c.pc)
		}
		c.mem[addr] = r(in.Rs2)
	case OpBeq:
		if r(in.Rs1) == r(in.Rs2) {
			next = int(in.Imm)
			c.cycles += takenBranchExtra
		}
	case OpBne:
		if r(in.Rs1) != r(in.Rs2) {
			next = int(in.Imm)
			c.cycles += takenBranchExtra
		}
	case OpBlt:
		if r(in.Rs1) < r(in.Rs2) {
			next = int(in.Imm)
			c.cycles += takenBranchExtra
		}
	case OpBge:
		if r(in.Rs1) >= r(in.Rs2) {
			next = int(in.Imm)
			c.cycles += takenBranchExtra
		}
	case OpJal:
		c.reg[LinkReg] = uint64(c.pc + 1)
		next = int(in.Imm)
	case OpJr:
		next = int(r(in.Rs1))
	case OpRnd:
		if c.rng == nil {
			return fmt.Errorf("mcu: RND with no RNG attached at pc %d", c.pc)
		}
		w(c.rng.Word())
	case OpHalt:
		c.halted = true
		return nil
	default:
		return fmt.Errorf("mcu: unknown opcode %v at pc %d", in.Op, c.pc)
	}
	c.pc = next
	return nil
}

// Run executes until HALT or the cycle guard trips.
//
//leo:allow ctx bounded by the MaxCycles guard; the firmware under test halts itself
func (c *CPU) Run() error {
	max := c.MaxCycles
	if max == 0 {
		max = 10_000_000_000
	}
	for !c.halted {
		if c.cycles > max {
			return fmt.Errorf("mcu: cycle guard tripped after %d cycles at pc %d", c.cycles, c.pc)
		}
		if err := c.Step(); err != nil {
			return err
		}
	}
	return nil
}
