package mcu

import (
	"math/rand"
	"strings"
	"testing"

	"leonardo/internal/fitness"
	"leonardo/internal/genome"
)

func run(t *testing.T, src string, mem int, rng RNG) *CPU {
	t.Helper()
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	cpu := New(prog, mem, rng)
	if err := cpu.Run(); err != nil {
		t.Fatal(err)
	}
	return cpu
}

func TestALUOps(t *testing.T) {
	cpu := run(t, `
		LI   r1, 12
		LI   r2, 10
		ADD  r3, r1, r2
		SUB  r4, r1, r2
		AND  r5, r1, r2
		OR   r6, r1, r2
		XOR  r7, r1, r2
		LI   r8, 2
		SHL  r9, r1, r8
		SHR  r10, r1, r8
		HALT`, 4, nil)
	want := map[int]uint64{3: 22, 4: 2, 5: 8, 6: 14, 7: 6, 9: 48, 10: 3}
	for r, v := range want {
		if cpu.Reg(r) != v {
			t.Errorf("r%d = %d, want %d", r, cpu.Reg(r), v)
		}
	}
}

func TestImmediateOps(t *testing.T) {
	cpu := run(t, `
		LI   r1, 0xF0
		ADDI r2, r1, -16
		ANDI r3, r1, 0x3C
		ORI  r4, r1, 0x0F
		XORI r5, r1, 0xFF
		SHLI r6, r1, 4
		SHRI r7, r1, 4
		HALT`, 4, nil)
	want := map[int]uint64{2: 0xE0, 3: 0x30, 4: 0xFF, 5: 0x0F, 6: 0xF00, 7: 0x0F}
	for r, v := range want {
		if cpu.Reg(r) != v {
			t.Errorf("r%d = %#x, want %#x", r, cpu.Reg(r), v)
		}
	}
}

func TestR0Immutable(t *testing.T) {
	cpu := run(t, `
		LI   r0, 99
		ADDI r0, r0, 5
		HALT`, 4, nil)
	if cpu.Reg(0) != 0 {
		t.Fatal("r0 must stay zero")
	}
}

func TestLoadStore(t *testing.T) {
	cpu := run(t, `
		LI   r1, 7        ; base
		LI   r2, 1234
		ST   r1, r2, 3    ; mem[10] = 1234
		LD   r3, r1, 3
		HALT`, 16, nil)
	if cpu.Mem(10) != 1234 || cpu.Reg(3) != 1234 {
		t.Fatal("load/store broken")
	}
}

func TestMemoryBoundsChecked(t *testing.T) {
	prog := MustAssemble(`
		LI r1, 100
		LD r2, r1, 0
		HALT`)
	cpu := New(prog, 16, nil)
	if err := cpu.Run(); err == nil {
		t.Fatal("out-of-bounds load not caught")
	}
}

func TestBranchesAndLoop(t *testing.T) {
	// Sum 1..10 with a loop.
	cpu := run(t, `
		LI   r1, 0       ; sum
		LI   r2, 1       ; i
		LI   r3, 11
	loop:	ADD  r1, r1, r2
		ADDI r2, r2, 1
		BLT  r2, r3, loop
		HALT`, 4, nil)
	if cpu.Reg(1) != 55 {
		t.Fatalf("sum = %d", cpu.Reg(1))
	}
}

func TestBranchVariants(t *testing.T) {
	cpu := run(t, `
		LI   r1, 5
		LI   r2, 5
		LI   r10, 0
		BEQ  r1, r2, eq
		LI   r10, 99
	eq:	BNE  r1, r2, bad
		BGE  r1, r2, ge
		LI   r10, 98
	ge:	LI   r3, 4
		BLT  r3, r1, lt
		LI   r10, 97
	lt:	HALT
	bad:	LI   r10, 96
		HALT`, 4, nil)
	if cpu.Reg(10) != 0 {
		t.Fatalf("branch logic wrong: marker %d", cpu.Reg(10))
	}
}

func TestCallReturn(t *testing.T) {
	cpu := run(t, `
		LI   r1, 3
		JAL  double
		JAL  double
		HALT
	double:	ADD r1, r1, r1
		JR   r15`, 4, nil)
	if cpu.Reg(1) != 12 {
		t.Fatalf("r1 = %d, want 12", cpu.Reg(1))
	}
}

type fixedRNG struct {
	vals []uint64
	i    int
}

func (f *fixedRNG) Word() uint64 {
	v := f.vals[f.i%len(f.vals)]
	f.i++
	return v
}

func TestRND(t *testing.T) {
	cpu := run(t, `
		RND r1
		RND r2
		HALT`, 4, &fixedRNG{vals: []uint64{11, 22}})
	if cpu.Reg(1) != 11 || cpu.Reg(2) != 22 {
		t.Fatal("RND wrong")
	}
	prog := MustAssemble("RND r1\nHALT")
	cpu2 := New(prog, 4, nil)
	if err := cpu2.Run(); err == nil {
		t.Fatal("RND without RNG should fail")
	}
}

func TestCycleCounting(t *testing.T) {
	cpu := run(t, `
		LI   r1, 1      ; 2
		ADD  r2, r1, r1 ; 2
		LD   r3, r0, 0  ; 4
		BEQ  r0, r0, x  ; 2+1 taken
	x:	HALT            ; 1`, 4, nil)
	if cpu.Cycles() != 2+2+4+3+1 {
		t.Fatalf("cycles = %d, want 12", cpu.Cycles())
	}
}

func TestCycleGuard(t *testing.T) {
	prog := MustAssemble(`
	loop:	BEQ r0, r0, loop`)
	cpu := New(prog, 4, nil)
	cpu.MaxCycles = 1000
	if err := cpu.Run(); err == nil {
		t.Fatal("infinite loop not caught")
	}
}

func TestAssemblerErrors(t *testing.T) {
	bad := []string{
		"FOO r1, r2, r3",
		"ADD r1, r2",
		"ADD r99, r1, r2",
		"LI r1, zzz",
		"BEQ r1, r2, nowhere",
		"dup: NOP\ndup: NOP",
		".equ ONLYNAME",
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("assembled invalid source %q", src)
		}
	}
}

func TestAssemblerFeatures(t *testing.T) {
	prog, err := Assemble(`
		.equ K 0x10
	; full-line comment
	a:	LI r1, K       # another comment style
	b:	c: NOP
		BEQ r0, r0, c
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) != 3 {
		t.Fatalf("program length %d", len(prog))
	}
	if prog[0].Imm != 16 {
		t.Fatal(".equ constant not applied")
	}
	if prog[2].Imm != 1 {
		t.Fatal("multiple labels on one line broken")
	}
}

func TestOpString(t *testing.T) {
	if OpAdd.String() != "ADD" || !strings.HasPrefix(Op(99).String(), "Op(") {
		t.Fatal("Op.String")
	}
}

func TestFirmwareFitnessMatchesEvaluator(t *testing.T) {
	e := fitness.New()
	rng := rand.New(rand.NewSource(12))
	check := func(g genome.Genome) {
		got, _, err := FitnessOf(g)
		if err != nil {
			t.Fatal(err)
		}
		if want := e.Score(g); got != want {
			t.Fatalf("genome %v: firmware fitness %d != %d", g, got, want)
		}
	}
	check(0)
	check(genome.Mask)
	for i := 0; i < 500; i++ {
		check(genome.Genome(rng.Uint64()) & genome.Mask)
	}
}

func TestFirmwareFitnessCycleCost(t *testing.T) {
	_, cycles, err := FitnessOf(genome.Mask)
	if err != nil {
		t.Fatal(err)
	}
	// The point of the comparison: one software fitness evaluation
	// costs hundreds of cycles where the FPGA's combinational module
	// costs zero (it settles within the read cycle).
	if cycles < 300 || cycles > 3000 {
		t.Fatalf("fitness cycles = %d, outside plausible range", cycles)
	}
}

func TestFirmwareGAConverges(t *testing.T) {
	res, err := RunGA(5, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("firmware GA stuck at %d after %d generations", res.BestFitness, res.Generations)
	}
	if fitness.New().Score(res.Best) != 26 {
		t.Fatalf("reported best genome scores %d", fitness.New().Score(res.Best))
	}
	if res.Cycles == 0 || res.Generations == 0 {
		t.Fatal("no work recorded")
	}
}

func TestFirmwareGARespectsCap(t *testing.T) {
	res, err := RunGA(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generations > 3 {
		t.Fatalf("ran %d generations past the cap", res.Generations)
	}
}

func TestFirmwareGADeterministic(t *testing.T) {
	a, err := RunGA(77, 500)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunGA(77, 500)
	if err != nil {
		t.Fatal(err)
	}
	if a.Best != b.Best || a.Cycles != b.Cycles {
		t.Fatal("firmware GA not deterministic")
	}
}

func BenchmarkFirmwareFitness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := FitnessOf(genome.Genome(i) & genome.Mask); err != nil {
			b.Fatal(err)
		}
	}
}
