package leonardo

import (
	"context"

	"leonardo/internal/island"
)

// Distributed archipelago facade: one island-model run sharded across K
// cooperating processes (leonardod nodes), each owning a contiguous
// block of the global deme space and exchanging champions through a
// MigrationTransport at every epoch barrier. The migration logic itself
// lives in internal/island and is byte-for-byte the single-node
// latch-then-commit path; a transport only moves epoch-stamped batches.
// internal/serve provides the HTTP transport and the fleet plumbing
// (peer registry, epoch barrier handshake, durable idempotent inbox);
// this file is the process-agnostic surface.

// ClusterShard places one node in a fleet: Nodes cooperating processes,
// this one holding Index. Shard k owns global demes
// [k·Demes/Nodes, (k+1)·Demes/Nodes).
type ClusterShard = island.Shard

// MigrationTransport carries emigrant batches between shards and runs
// the per-epoch done handshake; see island.Transport for the
// determinism contract.
type MigrationTransport = island.Transport

// Emigrant is one champion in flight between demes (global indices).
type Emigrant = island.Emigrant

// LoopbackTransport is the in-process transport: all demes local. It is
// the correct transport for a 1-node cluster.
type LoopbackTransport = island.Loopback

// ClusterRun is the pausable, resumable handle on one shard of a
// distributed archipelago — the Runner a cluster-configured leonardod
// node drives. One Step is one epoch: MigrateEvery generations of every
// local deme, the transport exchange, and the fleet-done barrier.
//
// Snapshot returns the state at the last completed epoch barrier, not
// the live archipelago: a Step that fails mid-exchange (peer timeout
// escalated to an error, node shutdown) leaves the archipelago with
// generations stepped but no migration committed, and checkpointing
// that torn state would diverge from the fleet. The cached snapshot
// makes every checkpoint a true barrier state, which is what the
// crash+resume differential tests replay from.
type ClusterRun struct {
	a    *island.Archipelago
	snap []byte
	// snapEpoch is the epoch of snap. It deliberately lags a.Epochs()
	// after a failed Step: callers pruning replay state (the serve
	// inbox) must key off the durable barrier, not the torn live state.
	snapEpoch int
}

// NewClusterRun starts this node's shard of a fresh distributed
// archipelago. Every node of the fleet must construct from identical
// IslandParams; deme i is seeded with DemeSeed(p.Base.Seed, i) whichever
// node hosts it, so the fleet trajectory is the single-node trajectory.
// A nil transport means LoopbackTransport (1-node fleets only).
func NewClusterRun(p IslandParams, shard ClusterShard, tr MigrationTransport) (*ClusterRun, error) {
	a, err := island.NewShard(p, shard, tr)
	if err != nil {
		return nil, err
	}
	return &ClusterRun{a: a, snap: a.Snapshot(), snapEpoch: a.Epochs()}, nil
}

// ResumeCluster reconstructs a shard from a KindCluster snapshot and
// re-enters the fleet with the given transport. The resumed shard
// replays deterministically from its checkpointed barrier: re-sent
// emigrant batches are acknowledged by peers as duplicates, and the
// immigrants it missed are re-read from the durable inbox.
func ResumeCluster(snapshot []byte, tr MigrationTransport) (*ClusterRun, error) {
	a, err := island.RestoreShard(snapshot, nil, tr)
	if err != nil {
		return nil, err
	}
	return &ClusterRun{a: a, snap: a.Snapshot(), snapEpoch: a.Epochs()}, nil
}

// EvolveDistributed runs this node's shard to completion under ctx; obs
// — if non-nil — receives one aggregate Event per epoch (local demes
// only). The fleet finishes together: a deme converging anywhere ends
// every shard at the same barrier.
func EvolveDistributed(ctx context.Context, p IslandParams, shard ClusterShard, tr MigrationTransport, obs Observer) (IslandResult, error) {
	a, err := island.NewShard(p, shard, tr)
	if err != nil {
		return IslandResult{}, err
	}
	return a.RunCtx(ctx, obs)
}

// MergeClusterSnapshots reassembles the K shard snapshots of one fleet
// — all taken at the same epoch barrier — into the canonical KindIsland
// snapshot: byte for byte what a single-node run would have written.
// The merged snapshot restores with ResumeIslands.
func MergeClusterSnapshots(parts [][]byte) ([]byte, error) {
	return island.MergeShardSnapshots(parts)
}

// Step advances the shard one epoch and, on success, refreshes the
// cached barrier snapshot.
func (r *ClusterRun) Step() error {
	if err := r.a.Step(); err != nil {
		return err
	}
	r.snap = r.a.Snapshot()
	r.snapEpoch = r.a.Epochs()
	return nil
}

// Done reports whether any deme — local or on a peer, as learned at the
// last barrier — has converged or exhausted its budget.
func (r *ClusterRun) Done() bool { return r.a.Done() }

// Event returns the aggregate telemetry of the most recent epoch
// (local demes only).
func (r *ClusterRun) Event() Event { return r.a.Event() }

// Kind returns the run's snapshot kind tag, KindCluster.
func (r *ClusterRun) Kind() string { return KindCluster }

// Snapshot returns the serialized shard state at the last completed
// epoch barrier.
func (r *ClusterRun) Snapshot() []byte { return r.snap }

// SetWorkers re-chooses the worker bound for the local deme fan-out
// (0 = GOMAXPROCS); never affects the trajectory.
func (r *ClusterRun) SetWorkers(n int) { r.a.SetWorkers(n) }

// Epoch returns the epoch of the cached barrier snapshot — the state
// Snapshot serves. After a failed Step this lags the live archipelago
// by design (see ClusterRun).
func (r *ClusterRun) Epoch() int { return r.snapEpoch }

// Shard returns this run's fleet placement.
func (r *ClusterRun) Shard() ClusterShard {
	sh, _ := r.a.Shard()
	return sh
}

// Result reports the shard outcome so far (local demes only; merge the
// fleet's snapshots for the global champion).
func (r *ClusterRun) Result() IslandResult { return r.a.Result() }
