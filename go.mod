module leonardo

go 1.22
