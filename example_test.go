package leonardo_test

import (
	"fmt"

	"leonardo"
)

// The canonical gait: inspect the tripod and its rule fitness.
func ExampleFitness() {
	g := leonardo.Tripod()
	fmt.Println(leonardo.Fitness(g), "/", leonardo.MaxFitness())
	fmt.Println(leonardo.FitnessBreakdown(g))
	// Output:
	// 26 / 26
	// eq 8/8 sym 6/6 coh 12/12
}

// Walking the tripod for five gait cycles in the kinematic simulator.
func ExampleWalk() {
	m := leonardo.Walk(leonardo.Tripod(), 5)
	fmt.Printf("%.0f mm, %d stumbles\n", m.DistanceMM, m.Stumbles)
	// Output:
	// 360 mm, 0 stumbles
}

// Decoding a genome into its per-leg movement plan.
func ExampleDescribe() {
	fmt.Println(leonardo.Describe(leonardo.Tripod()))
	// Output:
	// step 1:  L1 U>D  L2 D<D  L3 U>D  R1 D<D  R2 U>D  R3 D<D
	// step 2:  L1 D<D  L2 U>D  L3 D<D  R1 U>D  R2 D<D  R3 U>D
	// fitness 26/26 (eq 8/8 sym 6/6 coh 12/12)
}

// Evolving a gait with the paper's exact parameters. The run is
// deterministic for a fixed seed.
func ExampleEvolve() {
	res, err := leonardo.Evolve(leonardo.PaperParams(3))
	if err != nil {
		panic(err)
	}
	fmt.Println("converged:", res.Converged)
	fmt.Println("fitness:", res.BestFitness, "/", res.MaxFitness)
	// Output:
	// converged: true
	// fitness: 26 / 26
}

// The gait diagram of one tripod cycle: '#' stance, '.' swing.
func ExampleGaitDiagram() {
	fmt.Print(leonardo.GaitDiagram(leonardo.Tripod(), 1))
	// Output:
	// L1   ..####
	// L2   ###..#
	// L3   ..####
	// R1   ###..#
	// R2   ..####
	// R3   ###..#
}
