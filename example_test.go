package leonardo_test

import (
	"context"
	"fmt"

	"leonardo"
)

// The canonical gait: inspect the tripod and its rule fitness.
func ExampleFitness() {
	g := leonardo.Tripod()
	fmt.Println(leonardo.Fitness(g), "/", leonardo.MaxFitness())
	fmt.Println(leonardo.FitnessBreakdown(g))
	// Output:
	// 26 / 26
	// eq 8/8 sym 6/6 coh 12/12
}

// Walking the tripod for five gait cycles in the kinematic simulator.
func ExampleWalk() {
	m := leonardo.Walk(leonardo.Tripod(), 5)
	fmt.Printf("%.0f mm, %d stumbles\n", m.DistanceMM, m.Stumbles)
	// Output:
	// 360 mm, 0 stumbles
}

// Decoding a genome into its per-leg movement plan.
func ExampleDescribe() {
	fmt.Println(leonardo.Describe(leonardo.Tripod()))
	// Output:
	// step 1:  L1 U>D  L2 D<D  L3 U>D  R1 D<D  R2 U>D  R3 D<D
	// step 2:  L1 D<D  L2 U>D  L3 D<D  R1 U>D  R2 D<D  R3 U>D
	// fitness 26/26 (eq 8/8 sym 6/6 coh 12/12)
}

// Evolving a gait with the paper's exact parameters. The run is
// deterministic for a fixed seed.
func ExampleEvolve() {
	res, err := leonardo.Evolve(leonardo.PaperParams(3))
	if err != nil {
		panic(err)
	}
	fmt.Println("converged:", res.Converged)
	fmt.Println("fitness:", res.BestFitness, "/", res.MaxFitness)
	// Output:
	// converged: true
	// fitness: 26 / 26
}

// Growing a quality-diversity gait repertoire, checkpointing it
// mid-run, resuming, and querying the finished archive for a
// behaviour. The interrupted run finishes bit-identically to an
// uninterrupted one, so the lookup below is deterministic.
func ExampleEvolveRepertoire() {
	p := leonardo.RepertoireParams{
		Headings:       8,
		Strides:        4,
		Cycles:         2,
		Batch:          32,
		MaxEvaluations: 3200,
		Seed:           3,
	}

	// Step a fresh run halfway, snapshot it, and throw the run away —
	// the snapshot alone carries the full state.
	run, err := leonardo.NewRepertoireRun(p)
	if err != nil {
		panic(err)
	}
	for run.Batches() < 50 {
		if err := run.Step(); err != nil {
			panic(err)
		}
	}
	checkpoint := run.Snapshot()

	// Resume from bytes and drive the archive to its budget.
	resumed, err := leonardo.ResumeRepertoire(checkpoint)
	if err != nil {
		panic(err)
	}
	res, err := resumed.RunCtx(context.Background(), nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("best:", res.BestFitness, "/", res.MaxFitness)

	// O(1) behaviour query: the fittest gait that walks straight ahead
	// (heading 0) at about 30 mm per cycle.
	if elite, ok := resumed.Lookup(0, 30); ok {
		m := leonardo.Walk(elite.Genome, 2)
		fmt.Printf("lookup fitness %d, walked %.0f mm\n", elite.Fitness, m.DistanceMM)
	}
	// Output:
	// best: 26 / 26
	// lookup fitness 26, walked 60 mm
}

// The gait diagram of one tripod cycle: '#' stance, '.' swing.
func ExampleGaitDiagram() {
	fmt.Print(leonardo.GaitDiagram(leonardo.Tripod(), 1))
	// Output:
	// L1   ..####
	// L2   ###..#
	// L3   ..####
	// R1   ###..#
	// R2   ..####
	// R3   ###..#
}
